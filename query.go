package upidb

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"slices"
	"time"

	"upidb/internal/fracture"
	"upidb/internal/planner"
	"upidb/internal/shard"
	"upidb/internal/upi"
)

// Kind identifies the class of query a Query descriptor requests.
type Kind int

// The query classes Run executes.
const (
	// KindPTQ is a probabilistic threshold query: all tuples whose
	// confidence for attr = value is at least the threshold.
	KindPTQ Kind = iota
	// KindTopK is a top-k query: the k highest-confidence tuples for
	// one value of the primary attribute.
	KindTopK
	// KindCircle is a spatial range PTQ (paper Query 4): observations
	// within a radius of a point with appearance probability >= the
	// threshold. Executed by SpatialTable.Run.
	KindCircle
	// KindSegment is a PTQ on the uncertain road-segment attribute
	// (paper Query 5). Executed by SpatialTable.Run.
	KindSegment
)

func (k Kind) String() string {
	switch k {
	case KindPTQ:
		return "PTQ"
	case KindTopK:
		return "TopK"
	case KindCircle:
		return "Circle"
	case KindSegment:
		return "Segment"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// spatial reports whether the descriptor belongs to SpatialTable.Run.
func (k Kind) spatial() bool { return k == KindCircle || k == KindSegment }

// Query describes one query: the predicate plus per-query execution
// options. Build it with PTQ or TopKQuery and chain With* options —
// each option returns a modified copy, so descriptors are values that
// can be stored, reused and shared between goroutines:
//
//	q := upidb.PTQ("", "MIT", 0.1).WithParallelism(4).WithStats()
//	res, err := table.Run(ctx, q)
type Query struct {
	kind  Kind
	attr  string // "" = the table's primary attribute
	value string
	qt    float64
	k     int

	// Spatial predicate (KindCircle).
	center Point
	radius float64

	parallelism int
	usePlanner  bool
	heuristic   bool
	wantStats   bool
	explainOnly bool
	trace       TraceFunc
}

// PTQ describes a probabilistic threshold query "attr = value AND
// confidence >= qt". attr may be the table's primary attribute, any
// secondary-indexed attribute, or "" as shorthand for the primary
// attribute; Run rejects anything else with ErrUnknownAttr.
func PTQ(attr, value string, qt float64) Query {
	return Query{kind: KindPTQ, attr: attr, value: value, qt: qt}
}

// TopKQuery describes a top-k query on the primary attribute: the k
// highest-confidence tuples with the given value.
func TopKQuery(value string, k int) Query {
	return Query{kind: KindTopK, value: value, k: k}
}

// Circle describes the paper's Query 4 on a spatial table: all
// observations within radius of q whose appearance probability is at
// least threshold. Execute it with SpatialTable.Run; Table.Run rejects
// it.
func Circle(q Point, radius, threshold float64) Query {
	return Query{kind: KindCircle, center: q, radius: radius, qt: threshold}
}

// Segment describes the paper's Query 5 on a spatial table: all
// observations whose uncertain road segment equals segment with
// probability >= qt. Execute it with SpatialTable.Run; Table.Run
// rejects it.
func Segment(segment string, qt float64) Query {
	return Query{kind: KindSegment, value: segment, qt: qt}
}

// WithParallelism overrides the table's partition fan-out width for
// this query only (0 = table default, 1 = serial scan). Modeled query
// costs are identical at every setting; only wall-clock time changes.
func (q Query) WithParallelism(n int) Query {
	q.parallelism = n
	return q
}

// WithPlanner forces the query through the cost-based planner — which
// picks the cheapest access path (primary scan, tailored secondary, or
// full scan) from the statistics catalog's histograms — even when the
// catalog is stale. Run already consults the planner automatically
// whenever the catalog is fresh, so this is a force-flag, not the
// gate; it fails with ErrNoStats if the queried attribute has no
// seeded statistics at all. Planner routing applies to PTQs; a top-k
// query ignores it.
func (q Query) WithPlanner() Query {
	q.usePlanner = true
	return q
}

// WithHeuristic pins the query to the fixed heuristic routing (primary
// attribute → clustered UPI scan, secondary attribute → tailored
// secondary access), bypassing the statistics catalog and the planner
// entirely — the pre-catalog behavior. Mostly useful for measuring the
// planner's benefit; WithPlanner wins if both are set.
func (q Query) WithHeuristic() Query {
	q.heuristic = true
	return q
}

// WithStats additionally reports the modeled disk time of the query
// as Info().ModeledTime — the cost of exactly this query's I/O
// (derived from its own partition tapes), unpolluted by concurrent
// queries or merges. Structural statistics (entries scanned,
// partitions read, plan chosen) are collected regardless.
func (q Query) WithStats() Query {
	q.wantStats = true
	return q
}

// WithExplain turns the query into a plan-only request: Run costs the
// candidate plans without executing anything, and Info().Explain holds
// the EXPLAIN-style listing, headed by the routing decision Run would
// have made — planner from fresh stats, stale-fallback heuristic, or
// forced WithPlanner. Costing requires seeded statistics for the
// queried attribute (ErrNoStats otherwise). Only PTQ queries can be
// explained; Run rejects a top-k explain request instead of silently
// executing it.
func (q Query) WithExplain() Query {
	q.explainOnly = true
	return q
}

// WithTrace attaches a span-event callback to the query: fn receives
// one TraceEvent per execution milestone — the admission verdict, each
// shard dispatch, each partition scan start/end, and (on the streaming
// path) each merged-stream yield. fn may be called from concurrent
// scan workers, so it must be safe for concurrent use and fast; see
// TraceFunc. Tracing never alters results, routing or modeled costs.
func (q Query) WithTrace(fn TraceFunc) Query {
	q.trace = fn
	return q
}

// resState tracks how far a Results handle has been consumed.
type resState int

const (
	// statePending: prepared (partitions pinned) but not yet executed.
	statePending resState = iota
	// stateStreaming: an All iterator is mid-drain; accessors that
	// would force a second execution are inert until it finishes.
	stateStreaming
	// stateDrained: fully consumed; results holds the complete set.
	stateDrained
	// statePartial: a streaming All was abandoned mid-drain; the
	// remaining scans were cancelled and the handle is spent.
	statePartial
	// stateFailed: execution failed; err holds the cause.
	stateFailed
)

// Results is the answer to one Run call. The query's partition set is
// pinned when Run returns, but no scan has happened yet: the first
// consumption executes it, one of two ways.
//
//   - All streams: a k-way merge of the per-partition
//     confidence-sorted cursors yields the globally next-best result
//     while slower partitions are still scanning, and a top-k query
//     stops scanning — and stops charging modeled I/O — as soon as the
//     k-th result is out.
//   - Collect and Len force the full materialized drain: every
//     partition scanned to completion in parallel, exactly the
//     pre-streaming execution.
//
// Both produce the same results in the same order. After a complete
// drain (either way) the handle is reusable: All replays the
// materialized results and Collect returns them. After a *partial*
// streaming drain the handle is spent — a second All yields
// ErrStreamConsumed, and Collect/Len report an empty set — so a
// half-consumed stream can never silently resume mid-query.
//
// Execution errors (a context cancelled mid-stream, a corrupt page)
// surface in All's error slot and through Err; Collect returns nil in
// that case. A Results handle is not safe for concurrent use. A
// handle that is never consumed releases its partition pins when
// garbage-collected (or on Close).
type Results struct {
	ctx       context.Context
	prep      *shard.Prepared
	wantStats bool

	// met, kindLabel and started feed the observed-wall-clock vs
	// modeled-cost histograms once, at the handle's terminal
	// transition (recorded guards the once).
	met       *dbMetrics
	kindLabel string
	started   time.Time
	recorded  bool

	state   resState
	results []Result
	info    QueryInfo
	err     error
}

// newLazyResults wraps a prepared query into an unconsumed handle and
// arranges for its partition pins to be dropped if the handle is
// garbage-collected without ever being consumed.
func newLazyResults(ctx context.Context, prep *shard.Prepared, q Query, plan, source string, met *dbMetrics, kindLabel string, started time.Time) *Results {
	r := &Results{
		ctx:       ctx,
		prep:      prep,
		wantStats: q.wantStats,
		info:      QueryInfo{Plan: plan, PlanSource: source},
		met:       met,
		kindLabel: kindLabel,
		started:   started,
	}
	// The cleanup must not capture r, and Release is idempotent, so a
	// normally-consumed handle's cleanup is a no-op.
	runtime.AddCleanup(r, func(p *shard.Prepared) { p.Release() }, prep)
	return r
}

// materialize executes a still-pending query the materialized way.
func (r *Results) materialize() {
	if r.state != statePending {
		return
	}
	rs, st, err := r.prep.Collect(r.ctx)
	r.fillInfo(st)
	if err != nil {
		r.state = stateFailed
		r.err = err
		return
	}
	r.results = rs
	r.state = stateDrained
}

// fillInfo folds the execution statistics into the query info,
// keeping the routing fields chosen at Run time.
func (r *Results) fillInfo(st fracture.Stats) {
	r.info.HeapEntries = st.HeapEntries
	r.info.CutoffPointers = st.CutoffPointers
	r.info.Partitions = st.PartitionsRead
	r.info.BufferHits = st.BufferHits
	if r.wantStats {
		r.info.ModeledTime = st.ModeledTime
	}
	// fillInfo is every execution path's terminal funnel, so the
	// observed-vs-modeled pair is recorded here — for streaming and
	// materialized drains alike, and regardless of WithStats (the
	// engine always computes ModeledTime).
	if r.met != nil && !r.recorded {
		r.recorded = true
		r.met.queryWall.With(r.kindLabel).Observe(time.Since(r.started).Seconds())
		r.met.queryModeled.With(r.kindLabel).Observe(st.ModeledTime.Seconds())
	}
}

// All returns an iterator over the results in confidence-descending
// order (ties broken by tuple ID):
//
//	for r, err := range res.All() { ... }
//
// On an unconsumed handle, All executes the query incrementally: the
// first result is yielded as soon as every partition cursor has
// produced its head — one heap page per partition for an index scan —
// not when the slowest partition finishes, and each partition's pin is
// released the moment its stream is exhausted. Breaking out of the
// loop cancels the remaining partition scans; pages they never read
// are never charged. The error slot delivers mid-stream failures
// (ErrCanceled when the context is cancelled between pulls) and
// terminates the iteration.
//
// After a full drain, All replays the same results; after a partial
// drain it yields ErrStreamConsumed (see Results).
func (r *Results) All() iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		switch r.state {
		case stateDrained:
			for _, res := range r.results {
				if !yield(res, nil) {
					return
				}
			}
		case statePending:
			st := r.prep.Stream(r.ctx)
			r.state = stateStreaming
			for {
				res, ok, err := st.Next()
				if err != nil {
					r.state = stateFailed
					r.err = err
					r.results = nil
					r.fillInfo(st.Stats())
					yield(Result{}, err)
					return
				}
				if !ok {
					r.state = stateDrained
					r.fillInfo(st.Stats())
					return
				}
				r.results = append(r.results, res)
				if !yield(res, nil) {
					st.Close()
					r.state = statePartial
					r.err = ErrStreamConsumed
					r.results = nil
					r.fillInfo(st.Stats())
					if r.met != nil {
						r.met.partialDrains.Inc()
					}
					return
				}
			}
		case stateStreaming, statePartial:
			// Either a re-entrant All while another iterator is still
			// mid-drain, or a handle spent by a partial drain: never
			// resume (or double-consume) the underlying stream.
			yield(Result{}, ErrStreamConsumed)
		case stateFailed:
			yield(Result{}, r.err)
		}
	}
}

// Collect returns all results as a slice, in the same order All yields
// them. On an unconsumed handle it forces the full materialized drain
// (every partition scanned to completion — for a top-k query, All is
// the cheaper consumption). It returns nil when execution failed, the
// handle was partially drained, or an All iterator is still mid-drain;
// Err reports why.
func (r *Results) Collect() []Result {
	r.materialize()
	if r.state != stateDrained {
		return nil
	}
	return slices.Clone(r.results)
}

// Len returns the number of results Collect would return, forcing the
// full drain on an unconsumed handle (0 after a failure or a partial
// drain).
func (r *Results) Len() int {
	r.materialize()
	if r.state != stateDrained {
		return 0
	}
	return len(r.results)
}

// Err returns the terminal error of the handle's execution: nil after
// a successful full drain, the failure cause (e.g. ErrCanceled) after
// an error, ErrStreamConsumed after a partial drain. On an unconsumed
// handle it forces the materialized drain first, so the legacy
// Run-then-check pattern still observes execution errors.
func (r *Results) Err() error {
	r.materialize()
	return r.err
}

// Close releases an unconsumed handle's partition pins without
// executing the query. Consuming the handle (fully or partially)
// releases them too; Close is only needed for a Run whose results
// turned out not to matter. Idempotent.
func (r *Results) Close() {
	if r.state == statePending {
		r.state = statePartial
		r.err = ErrStreamConsumed
		r.prep.Release()
	}
}

// Info reports what the query touched and cost. ModeledTime is only
// measured when the query was built WithStats; Plan and Explain are
// only set for planner-routed / WithExplain runs. On an unconsumed
// handle Info forces the full materialized drain so the counters are
// complete (the routing fields Plan and PlanSource are available
// either way); after a streaming consumption it reports what the
// stream actually touched — for an early-terminated top-k, that is
// less I/O than the materialized execution would have charged.
func (r *Results) Info() QueryInfo {
	r.materialize()
	return r.info
}

// Run admits and prepares one query described by q against the table,
// honoring ctx: a context that is already done fails fast with
// ErrCanceled before any partition is pinned or any modeled I/O
// charged. Run itself performs no scan — it validates, routes, applies
// admission control and pins the partition snapshot; the returned
// handle executes on first consumption. All streams results
// incrementally (first results flow before the slowest partition
// finishes; a top-k stops scanning at the k-th result), while
// Collect/Len/Info force the materialized parallel drain with exactly
// the pre-streaming semantics. A cancellation mid-execution stops the
// scans between heap pages, stops charging modeled I/O and releases
// every partition pin: the materialized path reports it as an error
// from Collect (via Err), the streaming path through All's error slot.
//
// A PTQ routes through the cost-based planner automatically whenever
// the table's statistics catalog is fresh (staleness at or below the
// WithStatsStaleness threshold); when statistics are absent
// or stale — or under WithHeuristic — the fixed heuristic routing
// runs instead. Info().PlanSource reports which happened. On the
// planner path, a deadline on ctx is compared against the chosen
// plan's modeled cost: a query that cannot finish in time is refused
// immediately with ErrCanceled — zero modeled I/O, zero pinned
// partitions — instead of being admitted and cancelled midway.
//
// Run is safe for concurrent use alongside inserts, deletes, flushes
// and merges; it sees a consistent snapshot of the table (main UPI +
// fractures + RAM buffer) taken at call time.
func (t *Table) Run(ctx context.Context, q Query) (*Results, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	attr, primary, err := t.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	return t.runResolved(ctx, q, attr, primary)
}

// resolveQuery is Run's validation pass: spatial descriptors are
// rejected, the attribute is resolved against the table schema, and
// explain-only requests are checked for plannability. Table.Prepare
// runs it once and reuses the outcome on every execution.
func (t *Table) resolveQuery(q Query) (attr, primary string, err error) {
	if q.kind.spatial() {
		return "", "", fmt.Errorf("upidb: %v is a spatial query; run it with SpatialTable.Run", q.kind)
	}
	primary = t.shards.Attr()
	attr = q.attr
	if attr == "" {
		attr = primary
	}
	if attr != primary && !slices.Contains(t.shards.SecondaryAttrs(), attr) {
		return "", "", fmt.Errorf("%w: %q (primary %q, secondary %v)",
			ErrUnknownAttr, attr, primary, t.shards.SecondaryAttrs())
	}
	if q.explainOnly && q.kind != KindPTQ {
		// Explain is plan-only by contract; never fall through to a
		// full execution for a query class the planner can't cost.
		return "", "", fmt.Errorf("upidb: WithExplain supports PTQ queries only")
	}
	return attr, primary, nil
}

// runResolved is Run after validation: routing, admission, snapshot.
func (t *Table) runResolved(ctx context.Context, q Query, attr, primary string) (*Results, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	// The metrics trace sink is chained unconditionally — traced and
	// untraced queries report identical scatter/scan/yield counters;
	// started anchors the observed-wall-clock histogram.
	q.trace = t.db.met.chainTrace(q.trace)
	started := time.Now()
	if q.kind == KindPTQ {
		source := t.routeSource(attr, q)
		if q.explainOnly || source == PlanSourceForced {
			return t.runPlanned(ctx, q, attr, source, started)
		}
		if source == PlanSourceStats {
			res, err := t.runPlanned(ctx, q, attr, source, started)
			if err == nil || !errors.Is(err, ErrNoStats) {
				return res, err
			}
			// A concurrent subset re-seed dropped this attribute's
			// statistics between the freshness check and planning;
			// degrade to the heuristic route like any stale catalog.
		}
	}
	return t.runHeuristic(ctx, q, attr, primary, started)
}

// routeSource decides how Run will route a PTQ, without executing
// anything: forced planner, automatic planner from fresh statistics,
// or the heuristic fallback.
func (t *Table) routeSource(attr string, q Query) string {
	switch {
	case q.usePlanner:
		return PlanSourceForced
	case q.heuristic:
		return PlanSourceHeuristic
	case t.shards.Fresh(attr):
		return PlanSourceStats
	default:
		return PlanSourceHeuristic
	}
}

// runHeuristic prepares the fixed pre-planner routing: top-k and
// primary PTQs scan the clustered UPI, secondary PTQs use tailored
// secondary access. The returned handle is unconsumed — the partition
// set is pinned, but no scan happens until All streams it or
// Collect/Len materialize it.
func (t *Table) runHeuristic(ctx context.Context, q Query, attr, primary string, started time.Time) (*Results, error) {
	req := fracture.Req{Value: q.value, Parallelism: q.parallelism, Trace: fracture.TraceFunc(q.trace)}
	switch {
	case q.kind == KindTopK:
		req.Kind = fracture.KindTopK
		req.K = q.k
	case attr == primary:
		req.Kind = fracture.KindPTQ
		req.QT = q.qt
	default:
		req.Kind = fracture.KindSecondary
		req.Attr = attr
		req.QT = q.qt
		req.Tailored = true
	}
	q.emitAdmission("admitted: heuristic route, not cost-priced")
	t.db.met.admissions.With("unpriced").Inc()
	t.db.met.routes.With(PlanSourceHeuristic).Inc()
	prep, err := t.shards.Prepare(ctx, req)
	if err != nil {
		return nil, err
	}
	return newLazyResults(ctx, prep, q, "", PlanSourceHeuristic, t.db.met, q.kind.String(), started), nil
}

// emitAdmission emits the admission-verdict trace event (table-scoped,
// shard 0).
func (q Query) emitAdmission(detail string) {
	if q.trace != nil {
		q.trace(TraceEvent{Kind: TraceAdmission, Detail: detail})
	}
}

// runPlanned costs a PTQ through the cost-based planner and — unless
// the query is explain-only — admits and executes the cheapest plan.
func (t *Table) runPlanned(ctx context.Context, q Query, attr, source string, started time.Time) (*Results, error) {
	plans, cached, err := t.shards.PlanPTQCached(attr, q.value, q.qt)
	if err != nil {
		return nil, err
	}
	if cached && source != PlanSourceHeuristic {
		// The plans were served from the generation-guarded plan cache
		// (identical to what fresh costing would produce — same
		// generation, same fracture layout). Routing, admission and
		// execution proceed unchanged; only the provenance differs. A
		// heuristic-routed explain keeps its heuristic label: the planner
		// ran for display only, not for routing.
		source = PlanSourceCached
	}
	best := plans[0]
	if q.explainOnly {
		info := QueryInfo{PlanSource: source, Plan: best.Kind.String()}
		info.Explain = t.explainRouting(source, q.heuristic) + planner.Explain(plans)
		return &Results{state: stateDrained, info: info}, nil
	}
	t.db.met.plannedCost.Observe(best.EstimatedCost.Seconds())
	// Deadline-aware admission: if the remaining deadline cannot cover
	// even the cheapest plan's modeled service time, refuse up front —
	// before any partition is pinned or any modeled I/O charged —
	// rather than admit work that is doomed to be cancelled midway.
	// The deadline is interpreted as a budget in *modeled* time, the
	// engine's service-time currency (wall-clock execution on the
	// simulated disk is far faster); calibrating a modeled-to-wall
	// ratio for real deployments is a ROADMAP follow-on.
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain < best.EstimatedCost {
			q.emitAdmission(fmt.Sprintf("refused: remaining deadline %v below modeled cost %v (%v)",
				remain.Round(time.Millisecond), best.EstimatedCost.Round(time.Millisecond), best.Kind))
			t.db.met.admissions.With("refused").Inc()
			return nil, fmt.Errorf(
				"%w: admission refused: remaining deadline %v is below the cheapest plan's modeled cost %v (%v on %q)",
				ErrCanceled, remain.Round(time.Millisecond),
				best.EstimatedCost.Round(time.Millisecond), best.Kind, best.Attr)
		} else {
			q.emitAdmission(fmt.Sprintf("admitted: remaining deadline %v covers modeled cost %v (%v)",
				remain.Round(time.Millisecond), best.EstimatedCost.Round(time.Millisecond), best.Kind))
		}
	} else {
		q.emitAdmission(fmt.Sprintf("admitted: no deadline, modeled cost %v (%v)",
			best.EstimatedCost.Round(time.Millisecond), best.Kind))
	}
	t.db.met.admissions.With("admitted").Inc()
	t.db.met.routes.With(source).Inc()
	req, err := planner.PlanReq(best, q.value, q.qt, q.parallelism)
	if err != nil {
		return nil, err
	}
	req.Trace = fracture.TraceFunc(q.trace)
	prep, err := t.shards.Prepare(ctx, req)
	if err != nil {
		return nil, err
	}
	return newLazyResults(ctx, prep, q, best.Kind.String(), source, t.db.met, best.Kind.String(), started), nil
}

// explainRouting renders the routing line heading Explain output.
// heuristicForced distinguishes an explicit WithHeuristic from the
// stale/absent-stats fallback.
func (t *Table) explainRouting(source string, heuristicForced bool) string {
	si := t.StatsInfo()
	switch {
	case source == PlanSourceStats:
		return fmt.Sprintf("routing: planner, fresh stats (staleness %.1f%% <= %.0f%%, %d merge rebuilds)\n",
			si.Staleness*100, si.Threshold*100, si.Rebuilds)
	case source == PlanSourceCached:
		return fmt.Sprintf("routing: planner, cached plan (generation %d unchanged since costing)\n",
			t.shards.Generation())
	case source == PlanSourceForced:
		return "routing: planner, forced by WithPlanner\n"
	case heuristicForced:
		return "routing: heuristic, forced by WithHeuristic\n"
	default:
		return fmt.Sprintf("routing: heuristic fallback (stats stale or absent: staleness %.1f%%, threshold %.0f%%)\n",
			si.Staleness*100, si.Threshold*100)
	}
}
