package upidb

// Prepared-query and caching tests: golden parity between uncached
// Run, Prepared execution and result-cached tables at several shard
// counts; plan-cache invalidation across merge rebuilds, flushes and
// staleness transitions; option-scope validation for the redesigned
// spatial options; and a race-enabled soak of shared Prepared handles
// against concurrent maintenance.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// runCollect drains one execution and returns its ordered (id,
// confidence) pairs plus the final QueryInfo.
func runCollect(t *testing.T, run func(context.Context) (*Results, error)) ([][2]float64, QueryInfo) {
	t.Helper()
	res, err := run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var out [][2]float64
	for r, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, [2]float64{float64(r.Tuple.ID), r.Confidence})
	}
	return out, res.Info()
}

// sansSource zeroes the provenance field: cached and fresh executions
// must agree on everything else.
func sansSource(i QueryInfo) QueryInfo {
	i.PlanSource = ""
	return i
}

// TestPreparedAndCachedParity: at shard counts 1, 2 and 7, for every
// query kind and routing, a Prepared handle's executions and a
// result-cached table's executions (cold and warm) are byte-identical
// to the plain Run — same results, same statistics, same modeled cost.
// Only PlanSource may differ, flipping to cached-plan on repeats.
func TestPreparedAndCachedParity(t *testing.T) {
	build := func(t *testing.T, shards int, name string, opts ...Option) *Table {
		db := mustCreate(t)
		var load []*Tuple
		for i := 0; i < 150; i++ {
			load = append(load, shardTestTuple(t, uint64(i+1), i+1))
		}
		opts = append([]Option{WithCutoff(0.15), WithShards(shards)}, opts...)
		tab, err := db.BulkLoadTable(name, "X", []string{"Y"}, load, opts...)
		if err != nil {
			t.Fatal(err)
		}
		id := uint64(1000)
		for f := 0; f < 2; f++ {
			for i := 0; i < 15; i++ {
				if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
					t.Fatal(err)
				}
				id++
			}
			if err := tab.Delete(uint64(f*9 + 1)); err != nil {
				t.Fatal(err)
			}
			if err := tab.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	queries := []Query{
		PTQ("", "v03", 0.05).WithStats(),
		PTQ("", "v03", 0.4).WithStats(),
		PTQ("Y", "yv02", 0.05).WithStats(),
		PTQ("", "v04", 0.1).WithHeuristic().WithStats(),
		TopKQuery("v04", 9).WithStats(),
	}
	for _, shards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			plain := build(t, shards, "plain")
			cached := build(t, shards, "cached", WithResultCache(32))
			for qi, q := range queries {
				goldenRes, goldenInfo := runCollect(t, func(ctx context.Context) (*Results, error) {
					return plain.Run(ctx, q)
				})
				prep, err := plain.Prepare(q)
				if err != nil {
					t.Fatalf("q=%d: prepare: %v", qi, err)
				}
				type exec struct {
					label string
					run   func(context.Context) (*Results, error)
				}
				execs := []exec{
					{"plain repeat", func(ctx context.Context) (*Results, error) { return plain.Run(ctx, q) }},
					{"prepared 1", prep.Run},
					{"prepared 2", prep.Run},
					{"result-cache cold", func(ctx context.Context) (*Results, error) { return cached.Run(ctx, q) }},
					{"result-cache warm", func(ctx context.Context) (*Results, error) { return cached.Run(ctx, q) }},
				}
				for _, e := range execs {
					res, info := runCollect(t, e.run)
					if !reflect.DeepEqual(res, goldenRes) {
						t.Fatalf("q=%d %s: results diverged\n got %v\nwant %v", qi, e.label, res, goldenRes)
					}
					if got, want := sansSource(info), sansSource(goldenInfo); !reflect.DeepEqual(got, want) {
						t.Fatalf("q=%d %s: info diverged\n got %+v\nwant %+v", qi, e.label, got, want)
					}
				}
			}
		})
	}
}

// TestPlanCacheInvalidation: a cached plan is served only while the
// catalog generation and partition layout are unchanged — merge
// rebuilds, flushes and staleness-threshold transitions all force a
// fresh costing, and every execution answers ground truth throughout.
func TestPlanCacheInvalidation(t *testing.T) {
	db := mustCreate(t)
	mirror := map[uint64]*Tuple{}
	var load []*Tuple
	for i := 0; i < 120; i++ {
		tup := shardTestTuple(t, uint64(i+1), i+1)
		load = append(load, tup)
		mirror[tup.ID] = tup
	}
	tab, err := db.BulkLoadTable("inv", "X", []string{"Y"}, load, WithCutoff(0.15))
	if err != nil {
		t.Fatal(err)
	}
	q := PTQ("", "v03", 0.2)
	check := func(wantSource string, stage string) {
		t.Helper()
		res, info := runCollect(t, func(ctx context.Context) (*Results, error) {
			return tab.Run(ctx, q)
		})
		if info.PlanSource != wantSource {
			t.Fatalf("%s: plan source %q, want %q", stage, info.PlanSource, wantSource)
		}
		var want int
		for _, tup := range mirror {
			if tup.Confidence("X", "v03") >= 0.2 {
				want++
			}
		}
		if len(res) != want {
			t.Fatalf("%s: %d results, ground truth %d", stage, len(res), want)
		}
	}

	gen0 := tab.StatsInfo().Generation
	check(PlanSourceStats, "first run")
	check(PlanSourceCached, "warm repeat")

	// A merge rebuild replaces the statistics wholesale: the cached
	// plan must not survive it.
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	if g := tab.StatsInfo().Generation; g <= gen0 {
		t.Fatalf("merge did not advance the generation: %d -> %d", gen0, g)
	}
	check(PlanSourceStats, "post-merge")
	check(PlanSourceCached, "post-merge repeat")

	// A flush changes the partition layout (and so the plan's cost
	// inputs) without touching the generation: the fracture count in
	// the cache key forces a re-cost.
	extra := shardTestTuple(t, 5000, 3)
	mirror[extra.ID] = extra
	if err := tab.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	check(PlanSourceStats, "post-flush")
	check(PlanSourceCached, "post-flush repeat")

	// Unabsorbable deletes drive staleness past the threshold: the
	// crossing advances the generation, automatic routing degrades to
	// the heuristic, and a forced-planner repeat must re-cost rather
	// than serve a plan costed from the now-distrusted statistics.
	genFresh := tab.StatsInfo().Generation
	for id := uint64(2); tab.StatsInfo().Staleness <= tab.StatsInfo().Threshold; id++ {
		if err := tab.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(mirror, id)
	}
	if g := tab.StatsInfo().Generation; g <= genFresh {
		t.Fatalf("staleness crossing did not advance the generation: %d -> %d", genFresh, g)
	}
	check(PlanSourceHeuristic, "stale catalog")

	forced := q.WithPlanner()
	res, info := runCollect(t, func(ctx context.Context) (*Results, error) {
		return tab.Run(ctx, forced)
	})
	if info.PlanSource != PlanSourceForced {
		t.Fatalf("forced after crossing: %q (cached plan outlived its statistics)", info.PlanSource)
	}
	res2, info2 := runCollect(t, func(ctx context.Context) (*Results, error) {
		return tab.Run(ctx, forced)
	})
	if info2.PlanSource != PlanSourceCached || !reflect.DeepEqual(res, res2) {
		t.Fatalf("forced repeat: %q, %d vs %d results", info2.PlanSource, len(res2), len(res))
	}
}

// TestDropCachesPurgesPlanCache: DropCaches returns the table to the
// cold state bench runs rely on — the next planner-routed repeat costs
// from scratch.
func TestDropCachesPurgesPlanCache(t *testing.T) {
	db := mustCreate(t)
	var load []*Tuple
	for i := 0; i < 80; i++ {
		load = append(load, shardTestTuple(t, uint64(i+1), i+1))
	}
	tab, err := db.BulkLoadTable("drop", "X", nil, load, WithCutoff(0.15), WithResultCache(8))
	if err != nil {
		t.Fatal(err)
	}
	q := PTQ("", "v02", 0.2)
	run := func() string {
		res, err := tab.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for range res.All() {
		}
		return res.Info().PlanSource
	}
	run()
	if src := run(); src != PlanSourceCached {
		t.Fatalf("warm repeat: %q", src)
	}
	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if src := run(); src != PlanSourceStats {
		t.Fatalf("post-DropCaches repeat: %q (plan cache not purged)", src)
	}
}

// TestOptionScopeValidation: every option names its scope, and a
// misplaced option fails loudly at resolution time.
func TestOptionScopeValidation(t *testing.T) {
	if _, err := Create("", WithNodePageSize(4096)); err == nil ||
		!strings.Contains(err.Error(), "spatial-level option") {
		t.Fatalf("spatial option at db scope: %v", err)
	}
	db := mustCreate(t)
	if _, err := db.CreateTable("t", "X", nil, WithHeapPageSize(1024)); err == nil ||
		!strings.Contains(err.Error(), "spatial-level option") {
		t.Fatalf("spatial option at table scope: %v", err)
	}
	if _, err := db.BulkLoadSpatial("s", nil, WithCutoff(0.1)); err == nil ||
		!strings.Contains(err.Error(), "table-level option") {
		t.Fatalf("table option at spatial scope: %v", err)
	}
	if _, err := db.BulkLoadSpatial("s", nil, WithDiskBackend("/tmp/x")); err == nil ||
		!strings.Contains(err.Error(), "database-level option") {
		t.Fatalf("db option at spatial scope: %v", err)
	}
	if _, err := db.CreateTable("t", "X", nil, WithResultCache(-1)); err == nil {
		t.Fatal("negative result-cache capacity accepted")
	}

	// The spatial options land, via both the functional options and the
	// deprecated struct bridge.
	seg, err := NewDiscrete([]Alternative{{Value: "seg-1", Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	obs := []*Observation{
		{ID: 1, Loc: ConstrainedGaussian{Center: Point{X: 0, Y: 0}, Sigma: 10, Bound: 50}, Segment: seg},
	}
	if _, err := db.BulkLoadSpatial("fn", obs, WithNodePageSize(2048), WithHeapPageSize(32*1024)); err != nil {
		t.Fatalf("spatial functional options: %v", err)
	}
	//lint:ignore SA1019 the bridge's one release of life is exactly what this exercises
	if _, err := db.BulkLoadSpatial("bridge", obs,
		WithSpatialOptions(SpatialOptions{NodePageSize: 2048})); err != nil {
		t.Fatalf("deprecated bridge: %v", err)
	}
}

// TestSoakPreparedQueries: shared Prepared handles run from many
// goroutines while inserts, deletes, flushes and merges churn the
// table. Every execution must succeed and yield a well-ordered result
// stream. Run under -race in CI.
func TestSoakPreparedQueries(t *testing.T) {
	db := mustCreate(t)
	var load []*Tuple
	for i := 0; i < 120; i++ {
		load = append(load, shardTestTuple(t, uint64(i+1), i+1))
	}
	tab, err := db.BulkLoadTable("soakprep", "X", []string{"Y"}, load,
		WithCutoff(0.15), WithShards(3), WithResultCache(16))
	if err != nil {
		t.Fatal(err)
	}
	handles := []*Prepared{}
	for _, q := range []Query{
		PTQ("", "v03", 0.2).WithStats(),
		PTQ("Y", "yv02", 0.05),
		TopKQuery("v04", 7),
	} {
		p, err := tab.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := handles[i%len(handles)]
				if i%7 == 0 {
					p = handles[0].Bind(fmt.Sprintf("v%02d", i%7))
				}
				res, err := p.Run(context.Background())
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %w", r, i, err)
					return
				}
				prev := [2]float64{2, 0} // above any confidence
				for rr, err := range res.All() {
					if err != nil {
						errs <- fmt.Errorf("reader %d iter %d stream: %w", r, i, err)
						return
					}
					cur := [2]float64{rr.Confidence, float64(rr.Tuple.ID)}
					if cur[0] > prev[0] {
						errs <- fmt.Errorf("reader %d iter %d: out-of-order yield", r, i)
						return
					}
					prev = cur
				}
			}
		}(r)
	}

	id := uint64(10_000)
	for round := 0; round < 25; round++ {
		for i := 0; i < 10; i++ {
			if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := tab.Delete(uint64(round*3 + 1)); err != nil {
			t.Fatal(err)
		}
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
		if round%5 == 4 {
			if err := tab.Merge(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The handles survive everything above; a final execution still
	// answers and reports a sane provenance.
	res, err := handles[0].Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for range res.All() {
	}
	switch src := res.Info().PlanSource; src {
	case PlanSourceStats, PlanSourceCached, PlanSourceHeuristic:
	default:
		t.Fatalf("post-soak plan source: %q", src)
	}
}
