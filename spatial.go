package upidb

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"slices"
	"time"

	"upidb/internal/cupi"
	"upidb/internal/planner"
	"upidb/internal/sim"
	"upidb/internal/upi"
	"upidb/internal/utree"
)

// SpatialStatsInfo is a snapshot of a spatial table's statistics
// catalog — the inputs to Run's automatic routing decision. Spatial
// catalogs absorb every Insert delta and have no unabsorbed channel
// (no deletes, no out-of-band updates), so a seeded catalog is always
// fresh.
type SpatialStatsInfo struct {
	// Seeded reports whether the catalog describes the complete table
	// (always true for tables built with BulkLoadSpatial).
	Seeded bool
	// Observations is the number of observations the catalog tracks.
	Observations int64
}

// StatsInfo reports the current state of the spatial statistics
// catalog.
func (s *SpatialTable) StatsInfo() SpatialStatsInfo {
	return SpatialStatsInfo{
		Seeded:       s.catalog.Seeded(),
		Observations: s.catalog.TotalObservations(),
	}
}

// SpatialResults is the answer to one SpatialTable.Run call — the
// spatial counterpart of Results, with the same lazy dual-mode
// consumption contract:
//
//   - All streams incrementally: R-Tree node pages, segment-index
//     pages and heap fetches happen only as the loop demands them, and
//     breaking out stops the remaining I/O (it is never charged).
//   - Collect and Len force the full materialized drain and return the
//     canonical ordering (confidence DESC, observation ID ASC).
//
// Streaming order depends on the plan: a SegmentIndexScan streams in
// the canonical confidence order (the segment index's native key
// order), while an RTreeProbe or SpatialFullScan streams in refinement
// order (clustered heap order) — circle confidences are computed by
// integration at fetch time, so confidence-ordered delivery would
// require draining everything first. Collect always reports canonical
// order, even after a full All drain.
//
// After a complete drain the handle is reusable (All replays, Collect
// returns the set); after a partial streaming drain it is spent — a
// second All yields ErrStreamConsumed and Collect/Len report an empty
// set. Execution errors surface in All's error slot and through Err;
// a SpatialResults handle is not safe for concurrent use.
//
// While an All stream is mid-drain it holds the spatial table's read
// lock, so Insert waits for it; do not Insert from the goroutine that
// is consuming the stream.
type SpatialResults struct {
	ctx       context.Context
	s         *SpatialTable
	wantStats bool

	// collect and cursor execute the routed plan; finishTape is set
	// while I/O routing is active.
	collect func(ctx context.Context) ([]SpatialResult, cupi.Stats, error)
	cursor  func(ctx context.Context) *cupi.Cursor

	state   resState
	results []SpatialResult
	info    QueryInfo
	err     error
}

// routeTape starts recording this query's I/O on a private tape.
// finish releases the routing, replays the tape against the simulated
// disk and returns the modeled time — the same per-query accounting
// discipline fracture uses (under concurrent queries on the same
// table, routing is last-writer-wins, the known overlap caveat).
func (r *SpatialResults) routeTape() (finish func() time.Duration) {
	tape := sim.NewTape()
	release := r.s.db.fs.RouteTo(r.s.tab.Files(), tape)
	tape.Open(r.s.tab.Name())
	return func() time.Duration {
		release()
		return r.s.db.disk.Replay(tape)
	}
}

// fillInfo folds the execution statistics into the query info, keeping
// the routing fields chosen at Run time.
func (r *SpatialResults) fillInfo(st cupi.Stats, modeled time.Duration) {
	r.info.HeapEntries = st.Fetched
	r.info.Candidates = st.Candidates
	r.info.Partitions = 1
	if r.wantStats {
		r.info.ModeledTime = modeled
	}
}

// materialize executes a still-pending query the materialized way.
func (r *SpatialResults) materialize() {
	if r.state != statePending {
		return
	}
	finish := r.routeTape()
	rs, st, err := r.collect(r.ctx)
	r.fillInfo(st, finish())
	if err != nil {
		r.state = stateFailed
		r.err = err
		return
	}
	r.results = rs
	r.state = stateDrained
}

// All returns an iterator over the results:
//
//	for r, err := range res.All() { ... }
//
// On an unconsumed handle, All executes the query incrementally (see
// SpatialResults for the delivery order per plan). Breaking out of the
// loop cancels the rest of the scan; pages it never read are never
// charged. After a full drain, All replays the same results; after a
// partial drain it yields ErrStreamConsumed.
func (r *SpatialResults) All() iter.Seq2[SpatialResult, error] {
	return func(yield func(SpatialResult, error) bool) {
		switch r.state {
		case stateDrained:
			for _, res := range r.results {
				if !yield(res, nil) {
					return
				}
			}
		case statePending:
			cur := r.cursor(r.ctx)
			finish := r.routeTape()
			r.state = stateStreaming
			for {
				res, ok, err := cur.Next()
				if err != nil {
					r.state = stateFailed
					r.err = err
					r.results = nil
					r.fillInfo(cur.Stats(), finish())
					yield(SpatialResult{}, err)
					return
				}
				if !ok {
					r.state = stateDrained
					r.fillInfo(cur.Stats(), finish())
					return
				}
				r.results = append(r.results, res)
				if !yield(res, nil) {
					cur.Close()
					r.state = statePartial
					r.err = ErrStreamConsumed
					r.results = nil
					r.fillInfo(cur.Stats(), finish())
					return
				}
			}
		case stateStreaming, statePartial:
			yield(SpatialResult{}, ErrStreamConsumed)
		case stateFailed:
			yield(SpatialResult{}, r.err)
		}
	}
}

// Collect returns all results in the canonical order (confidence DESC,
// ID ASC), forcing the full materialized drain on an unconsumed
// handle. It returns nil when execution failed or the handle was
// partially drained; Err reports why.
func (r *SpatialResults) Collect() []SpatialResult {
	r.materialize()
	if r.state != stateDrained {
		return nil
	}
	out := slices.Clone(r.results)
	utree.SortResults(out)
	return out
}

// Len returns the number of results Collect would return, forcing the
// full drain on an unconsumed handle (0 after a failure or a partial
// drain).
func (r *SpatialResults) Len() int {
	r.materialize()
	if r.state != stateDrained {
		return 0
	}
	return len(r.results)
}

// Err returns the terminal error of the handle's execution: nil after
// a successful full drain, the failure cause (e.g. ErrCanceled) after
// an error, ErrStreamConsumed after a partial drain. On an unconsumed
// handle it forces the materialized drain first.
func (r *SpatialResults) Err() error {
	r.materialize()
	return r.err
}

// Close discards an unconsumed handle without executing the query.
// Consuming the handle (fully or partially) finishes it too; Close is
// only needed for a Run whose results turned out not to matter.
// Idempotent.
func (r *SpatialResults) Close() {
	if r.state == statePending {
		r.state = statePartial
		r.err = ErrStreamConsumed
	}
}

// Info reports what the query touched and cost. ModeledTime is only
// measured when the query was built WithStats; Plan and Explain are
// only set for planner-routed / WithExplain runs. On an unconsumed
// handle Info forces the full materialized drain so the counters are
// complete; after a streaming consumption it reports what the stream
// actually touched.
func (r *SpatialResults) Info() QueryInfo {
	r.materialize()
	return r.info
}

// Run admits and prepares one spatial query described by q (a Circle
// or Segment descriptor; discrete descriptors belong to Table.Run),
// honoring ctx exactly like Table.Run: a done context fails fast with
// ErrCanceled before any modeled I/O is charged, and Run itself
// performs no scan — it validates, routes and applies admission
// control; the returned handle executes on first consumption (All
// streams, Collect/Len/Info force the materialized drain).
//
// Routing mirrors the discrete engine: the query goes through the
// cost-based spatial planner — choosing between the R-Tree probe, the
// segment-index scan and a sequential full heap scan from the spatial
// statistics catalog — whenever the catalog is fresh (always, for
// tables built with BulkLoadSpatial, since every Insert applies its
// delta); WithHeuristic pins the fixed legacy routing (circle →
// R-Tree probe, segment → segment index), WithPlanner forces planning,
// and WithExplain returns the costed plans without executing.
// Info().PlanSource reports which happened. On the planner path, a ctx
// deadline shorter than the cheapest plan's modeled cost is refused up
// front with ErrCanceled — zero modeled I/O — the same deadline-aware
// admission discrete PTQs get. WithParallelism is accepted but inert:
// a spatial table is a single partition.
//
// Run is safe for concurrent use alongside Insert.
func (s *SpatialTable) Run(ctx context.Context, q Query) (*SpatialResults, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	if !q.kind.spatial() {
		return nil, fmt.Errorf("upidb: %v is not a spatial query; run it with Table.Run", q.kind)
	}
	if s.tab.Closed() {
		return nil, ErrClosed
	}
	source := s.routeSource(q)
	// The heuristic physical plan: the legacy fixed routing.
	physical := planner.RTreeProbe
	if q.kind == KindSegment {
		physical = planner.SegmentScan
	}
	planName := ""
	if q.explainOnly || source != PlanSourceHeuristic {
		plans, err := s.plan(q)
		switch {
		case err == nil:
			best := plans[0]
			if q.explainOnly {
				// Report the plan the routing would actually execute: the
				// cheapest costed plan on a planner route, the fixed
				// physical path on a heuristic one (the listing still
				// shows what each candidate would have cost).
				executed := best.Kind
				if source == PlanSourceHeuristic {
					executed = physical
				}
				info := QueryInfo{PlanSource: source, Plan: executed.String()}
				info.Explain = s.explainRouting(source, q.heuristic) + planner.Explain(plans)
				return &SpatialResults{state: stateDrained, info: info}, nil
			}
			// Deadline-aware admission, identical to the discrete path:
			// refuse a query whose remaining deadline cannot cover even
			// the cheapest plan's modeled cost, before any I/O.
			if dl, ok := ctx.Deadline(); ok {
				if remain := time.Until(dl); remain < best.EstimatedCost {
					return nil, fmt.Errorf(
						"%w: admission refused: remaining deadline %v is below the cheapest plan's modeled cost %v (%v)",
						ErrCanceled, remain.Round(time.Millisecond),
						best.EstimatedCost.Round(time.Millisecond), best.Kind)
				}
			}
			physical = best.Kind
			planName = best.Kind.String()
		case source == PlanSourceStats && errors.Is(err, ErrNoStats):
			// Degrade to the heuristic route like a stale discrete
			// catalog would.
			source = PlanSourceHeuristic
		default:
			return nil, err
		}
	}
	r := &SpatialResults{
		ctx:       ctx,
		s:         s,
		wantStats: q.wantStats,
		info:      QueryInfo{Plan: planName, PlanSource: source},
	}
	switch {
	case q.kind == KindCircle && physical == planner.SpatialScan:
		r.collect = func(ctx context.Context) ([]SpatialResult, cupi.Stats, error) {
			return s.tab.FullScanCircle(ctx, q.center, q.radius, q.qt)
		}
		r.cursor = func(ctx context.Context) *cupi.Cursor {
			return s.tab.ScanCircleCursor(ctx, q.center, q.radius, q.qt)
		}
	case q.kind == KindCircle:
		r.collect = func(ctx context.Context) ([]SpatialResult, cupi.Stats, error) {
			return s.tab.QueryCircle(ctx, q.center, q.radius, q.qt)
		}
		r.cursor = func(ctx context.Context) *cupi.Cursor {
			return s.tab.CircleCursor(ctx, q.center, q.radius, q.qt)
		}
	case physical == planner.SpatialScan:
		r.collect = func(ctx context.Context) ([]SpatialResult, cupi.Stats, error) {
			return s.tab.FullScanSegment(ctx, q.value, q.qt)
		}
		r.cursor = func(ctx context.Context) *cupi.Cursor {
			return s.tab.ScanSegmentCursor(ctx, q.value, q.qt)
		}
	default:
		r.collect = func(ctx context.Context) ([]SpatialResult, cupi.Stats, error) {
			return s.tab.QuerySegment(ctx, q.value, q.qt)
		}
		r.cursor = func(ctx context.Context) *cupi.Cursor {
			return s.tab.SegmentCursor(ctx, q.value, q.qt)
		}
	}
	return r, nil
}

// routeSource decides how Run will route a spatial query, without
// executing anything.
func (s *SpatialTable) routeSource(q Query) string {
	switch {
	case q.usePlanner:
		return PlanSourceForced
	case q.heuristic:
		return PlanSourceHeuristic
	case s.planner.Fresh():
		return PlanSourceStats
	default:
		return PlanSourceHeuristic
	}
}

// plan costs the candidate plans for q, cheapest first.
func (s *SpatialTable) plan(q Query) ([]planner.Plan, error) {
	if q.kind == KindCircle {
		return s.planner.PlanCircle(q.center, q.radius, q.qt)
	}
	return s.planner.PlanSegment(q.value, q.qt)
}

// explainRouting renders the routing line heading spatial Explain
// output.
func (s *SpatialTable) explainRouting(source string, heuristicForced bool) string {
	si := s.StatsInfo()
	switch {
	case source == PlanSourceStats:
		return fmt.Sprintf("routing: planner, fresh spatial stats (%d observations)\n", si.Observations)
	case source == PlanSourceForced:
		return "routing: planner, forced by WithPlanner\n"
	case heuristicForced:
		return "routing: heuristic, forced by WithHeuristic\n"
	default:
		return "routing: heuristic fallback (spatial statistics unseeded)\n"
	}
}
