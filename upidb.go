// Package upidb is a Go implementation of UPI — the Uncertain Primary
// Index of Kimura, Madden and Zdonik (PVLDB 3(1), 2010) — together
// with every substrate the paper builds on: a page-based B+Tree and
// R-Tree over a simulated disk, probabilistic inverted indexes (PII),
// U-Trees, cutoff indexes, multi-pointer secondary indexes with
// tailored access, fractured UPIs with LSM-style merging, and the
// paper's cost models.
//
// The package root is the public facade. A DB owns a simulated disk
// and file system; tables created through it are fractured UPIs (the
// paper's full-featured variant: RAM insert buffer, sequential flush,
// k-way merge). Probabilistic threshold queries (PTQs), secondary
// PTQs with tailored access and top-k queries are all first-class.
//
// Quick start:
//
//	db, _ := upidb.Create("") // in-memory, simulated disk
//	authors, _ := db.CreateTable("authors", "Institution",
//		[]string{"Country"}, upidb.WithCutoff(0.1))
//	authors.Insert(&upidb.Tuple{
//		ID: 1, Existence: 0.9,
//		Unc: []upidb.UncField{{Name: "Institution", Dist: upidb.Discrete{
//			{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2},
//		}}, {Name: "Country", Dist: upidb.Discrete{{Value: "US", Prob: 1}}}},
//	})
//	// PTQ on the primary attribute: confidence >= 0.1.
//	res, _ := authors.Run(ctx, upidb.PTQ("", "MIT", 0.1))
//	for r, _ := range res.All() { ... }
//
// A database is constructed with Create (new) or Open (existing) plus
// functional options. The default backend keeps every byte in memory
// over the deterministic simulated disk — the paper's experiment
// setting. Durability is one option away:
//
//	db, _ := upidb.Create("/var/data/upi") // or Create("", upidb.WithDiskBackend(dir))
//
// stores bytes in real files and makes every table durable: inserts
// and deletes are written to a per-table write-ahead log and fsynced
// before they are acknowledged, flushes and merges commit through an
// atomically renamed manifest, and OpenTable replays the WAL so every
// acknowledged write survives a crash. See README.md ("Durability &
// backends") for the recovery contract.
//
// Every query goes through one entry point, Table.Run: a Query
// descriptor (PTQ or TopKQuery, with chainable per-query options)
// executed under a context.Context, returning a Results handle that
// either streams (All) or materializes (Collect) the answers.
// Streaming is truly incremental: per-partition pull-based cursors
// feed a k-way merge that yields the globally next-best result while
// slower partitions are still scanning, and a top-k query stops
// scanning — and stops charging modeled I/O — at its k-th result.
// Cancellation and deadlines propagate through every layer — a
// cancelled query stops between heap pages, stops charging modeled
// I/O and fails with ErrCanceled. Errors are typed sentinels
// (ErrUnknownAttr, ErrNoStats, ErrCanceled, ErrClosed,
// ErrStreamConsumed) shared by all layers.
//
// Spatial tables (the paper's Section 5 continuous UPI over uncertain
// 2-D observations, BulkLoadSpatial) share the same regime: Circle and
// Segment descriptors executed by SpatialTable.Run with identical
// streaming, planner routing, admission and error semantics, backed by
// a spatial statistics catalog (a 2-D grid histogram of observation
// centroids plus a segment-attribute histogram) absorbed per insert.
//
// Statistics maintain themselves: every table owns a catalog of
// per-attribute value/probability histograms (Section 6.1) that
// absorbs insert and delete deltas as they happen and is re-derived
// for free from each merge's whole-heap scan. Run therefore routes
// PTQs through the cost-based planner automatically whenever the
// catalog is fresh (see StatsInfo), falling back to heuristic routing
// when statistics are absent or stale — and a Run whose context
// deadline is shorter than the chosen plan's modeled cost is refused
// up front with ErrCanceled, before pinning any partition or charging
// any modeled I/O (deadline-aware admission control).
//
// All I/O is charged to a deterministic disk model using the paper's
// cost constants (10 ms seek, 20 ms/MB read, 50 ms/MB write), so query
// costs reported by Stats are reproducible modeled times rather than
// wall-clock noise. See README.md for the architecture overview and
// the experiment harness (cmd/upibench) that regenerates the paper's
// evaluation.
//
// # Concurrency
//
// A DB and its tables are safe for concurrent use: any number of
// goroutines may run queries while others insert, delete, flush and
// merge. Queries snapshot the partition set (main UPI + fractures +
// RAM buffer) under a read lock and scan the immutable on-disk
// partitions outside it, so readers never block each other; inserts
// and deletes block them only momentarily, while a flush holds the
// write lock for the duration of the fracture build (one sequential
// write) and a merge builds its new generation without the lock.
//
// Each query additionally fans its per-partition scans out across a
// bounded worker pool sized by WithParallelism (default
// GOMAXPROCS) — the partition-parallel read path that multi-petabyte
// shared-nothing designs rely on. Modeled I/O stays deterministic at
// every parallelism: each partition records its I/O on a private tape
// that is replayed against the simulated disk in partition order, so
// the reported cost is identical to a serial scan no matter how the
// goroutines interleave.
//
// Merging can run in the background (Table.StartAutoMerge): when the
// fracture count or size crosses a threshold, a goroutine folds the
// fractures into a new main generation and swaps it in atomically.
// In-flight queries finish on the generation they started on; replaced
// partition files are reference-counted and removed only after the
// last such query completes.
package upidb

import (
	"fmt"
	"sync"
	"time"

	"upidb/internal/cupi"
	"upidb/internal/fracture"
	"upidb/internal/planner"
	"upidb/internal/prob"
	"upidb/internal/shard"
	"upidb/internal/sim"
	"upidb/internal/stats"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
	"upidb/internal/utree"
)

// Re-exported data-model types. These are aliases, so values flow
// freely between the facade and the internal packages.
type (
	// Tuple is one uncertain row: existence probability, deterministic
	// fields, uncertain attributes and an opaque payload.
	Tuple = tuple.Tuple
	// DetField is a deterministic named string field.
	DetField = tuple.DetField
	// UncField is an uncertain attribute with a discrete distribution.
	UncField = tuple.UncField
	// Alternative is one possible value of an uncertain attribute.
	Alternative = prob.Alternative
	// Discrete is a discrete distribution over alternatives, sorted by
	// decreasing probability.
	Discrete = prob.Discrete
	// Observation is an uncertain 2-D point (GPS-style) record.
	Observation = tuple.Observation
	// Point is a 2-D location.
	Point = prob.Point
	// ConstrainedGaussian is a truncated isotropic Gaussian in 2-D.
	ConstrainedGaussian = prob.ConstrainedGaussian
	// Result is a query answer: tuple plus confidence.
	Result = upi.Result
	// SpatialResult is a spatial query answer: observation plus
	// appearance probability.
	SpatialResult = utree.Result
	// DiskStats is a snapshot of simulated-disk activity.
	DiskStats = sim.Stats
)

// NewDiscrete builds a validated discrete distribution from
// alternatives, merging duplicates and sorting by probability.
func NewDiscrete(alts []Alternative) (Discrete, error) { return prob.NewDiscrete(alts) }

// DB owns a disk model, a storage backend and the tables created on
// them. Construct one with Create or Open.
type DB struct {
	disk    *sim.Disk
	fs      *storage.FS
	backend storage.Backend

	// defaults is the table configuration every CreateTable /
	// BulkLoadTable / OpenTable starts from, as resolved from the
	// database-level options; autoMerge, when set, starts the
	// background merger on every table; defaultShards is the shard
	// count tables inherit (0 = unsharded).
	defaults      fracture.Config
	autoMerge     *fracture.AutoMergeOptions
	defaultShards int

	// reg is the database's metrics registry; every table's engine
	// metrics and the facade's routing/admission/query metrics report
	// into it (see Metrics, WritePrometheus). met holds the
	// pre-resolved facade handles.
	reg *MetricsRegistry
	met *dbMetrics

	mu       sync.Mutex
	closed   bool
	tables   []*Table
	byName   map[string]*Table
	spatials []*SpatialTable
}

// DiskParams returns the paper's default disk cost constants (Table
// 6), as a starting point for WithDiskParams.
func DiskParams() sim.Params { return sim.DefaultParams() }

// DiskStats returns the accumulated simulated-disk activity.
func (db *DB) DiskStats() DiskStats { return db.disk.Stats() }

// TotalSizeBytes returns the total on-disk size of all files.
func (db *DB) TotalSizeBytes() int64 { return db.fs.TotalSize() }

// checkOpen fails with ErrClosed once the DB is closed.
func (db *DB) checkOpen() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return nil
}

// attachTable starts the background merger (when configured) on a
// freshly built sharded table and registers it with the DB under its
// name.
func (db *DB) attachTable(shards *shard.Table, am *AutoMergeOptions) (*Table, error) {
	t := &Table{db: db, shards: shards}
	if am != nil {
		if err := shards.StartAutoMerge(*am); err != nil {
			_ = shards.Close()
			return nil, err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		// Lost the race against Close: undo and refuse.
		_ = shards.Close()
		return nil, ErrClosed
	}
	if db.byName == nil {
		db.byName = make(map[string]*Table)
	}
	db.tables = append(db.tables, t)
	db.byName[shards.Name()] = t
	db.met.registerShardGauges(shards)
	return t, nil
}

// Table returns the attached table with the given name, or nil if no
// table of that name has been created or opened on this DB. When a
// name was attached more than once (a table closed and reopened), the
// most recent attachment wins.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.byName[name]
}

// CreateTable creates an empty fractured-UPI table clustered on the
// uncertain attribute primaryAttr, with secondary indexes on secAttrs.
// The table's statistics catalog starts complete (an empty table has
// nothing unknown) and absorbs every subsequent insert and delete, so
// Run routes through the cost-based planner from the first query.
// With WithShards(n) the table is hash-partitioned by tuple ID across
// n independent stores (shard-per-core); see README "Serving &
// sharding".
func (db *DB) CreateTable(name, primaryAttr string, secAttrs []string, opts ...Option) (*Table, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	cfg, am, shards, err := db.tableConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := shard.New(db.fs, name, primaryAttr, secAttrs, cfg, max(shards, 1), db.disk.Params())
	if err != nil {
		return nil, err
	}
	return db.attachTable(st, am)
}

// BulkLoadTable creates a fractured-UPI table whose main partitions
// are bulk-built from tuples with sequential I/O only (each shard
// receives the tuples it owns). The statistics catalog is seeded from
// the same tuples, so the engine owns complete cardinality knowledge
// without a separate BuildStats pass.
func (db *DB) BulkLoadTable(name, primaryAttr string, secAttrs []string, tuples []*Tuple, opts ...Option) (*Table, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	cfg, am, shards, err := db.tableConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := shard.BulkLoad(db.fs, name, primaryAttr, secAttrs, cfg, max(shards, 1), db.disk.Params(), tuples)
	if err != nil {
		return nil, err
	}
	return db.attachTable(st, am)
}

// OpenTable reloads a table previously created on this DB's storage.
// On a durable table every acknowledged write survives: each shard's
// manifest names its authoritative partitions and its write-ahead log
// replays the RAM insert buffer and pending deletes. On a non-durable
// table only flushed state survives. Either way the on-disk content is
// unknown to the statistics catalog, so Run uses heuristic routing
// until BuildStats seeds it or the first merge re-derives it. The
// persisted shard count is authoritative: omitting WithShards accepts
// whatever the table was created with, and a contradictory explicit
// count is an error.
func (db *DB) OpenTable(name, primaryAttr string, secAttrs []string, opts ...Option) (*Table, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	cfg, am, shards, err := db.tableConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := shard.Open(db.fs, name, primaryAttr, secAttrs, cfg, shards, db.disk.Params())
	if err != nil {
		return nil, err
	}
	return db.attachTable(st, am)
}

// Close closes the database: every table is closed — stopping
// background mergers, failing subsequent queries and mutations with
// ErrClosed — and any later CreateTable, BulkLoadTable, OpenTable or
// BulkLoadSpatial on this DB fails with ErrClosed too. In-flight
// queries finish normally on the snapshots they hold. The storage
// backend is closed last, releasing any real file handles a disk
// backend holds. Close returns the first error (background-merge
// failures surface here, like Table.Close); closing twice is safe.
func (db *DB) Close() error {
	db.mu.Lock()
	alreadyClosed := db.closed
	db.closed = true
	tables := db.tables
	spatials := db.spatials
	db.mu.Unlock()
	var first error
	for _, t := range tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range spatials {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	if !alreadyClosed {
		if err := db.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Table is an uncertain table clustered by a UPI. All mutations are
// buffered in RAM and reach disk on Flush (or automatically when the
// buffer fills); queries always see the freshest data.
//
// Every table owns a self-maintaining statistics catalog: inserts and
// deletes apply histogram deltas as they happen, and each merge
// re-derives the histograms from its own whole-heap scan. Run consults
// the cost-based planner automatically whenever the catalog is fresh
// enough (see WithStatsStaleness and StatsInfo), so callers
// get planned routing without ever touching BuildStats.
//
// A table built WithShards(n) is hash-partitioned by tuple ID across n
// independent stores: mutations touch only the owning shard, queries
// scatter to every shard and gather one globally confidence-ordered
// stream, and per-shard statistics/costs aggregate transparently in
// StatsInfo and QueryInfo. The default is one shard — the unsharded
// engine, byte-identical layout and costs.
type Table struct {
	db     *DB
	shards *shard.Table
}

// Name returns the table's name, as given at creation.
func (t *Table) Name() string { return t.shards.Name() }

// NumShards returns the number of independent stores the table is
// hash-partitioned across (1 = unsharded).
func (t *Table) NumShards() int { return t.shards.NumShards() }

// PrimaryAttr returns the primary (clustered) uncertain attribute.
func (t *Table) PrimaryAttr() string { return t.shards.Attr() }

// SecondaryAttrs returns the secondary-indexed attributes.
func (t *Table) SecondaryAttrs() []string { return t.shards.SecondaryAttrs() }

// Insert adds or replaces a tuple (buffered in the owning shard).
// Replacement is a true upsert: an older version of the same ID —
// buffered or already on disk — is superseded immediately at query
// time and dropped physically by the next merge.
func (t *Table) Insert(tup *Tuple) error { return t.shards.Insert(tup) }

// Delete removes the tuple with the given ID (buffered in the owning
// shard). Like Insert, it fails with ErrClosed once the table is
// closed.
func (t *Table) Delete(id uint64) error { return t.shards.Delete(id) }

// Flush writes buffered changes out as a new fracture (per shard).
func (t *Table) Flush() error { return t.shards.Flush() }

// Merge folds all fractures back into the main UPI with one
// sequential pass per shard, restoring query performance.
func (t *Table) Merge() error { return t.shards.Merge() }

// Close stops the table's background mergers (if any) and marks the
// table closed: every subsequent query and mutation fails with
// ErrClosed. In-flight queries finish normally on the snapshot they
// hold. Close returns the first background-merge error, like
// StopAutoMerge; closing twice is safe.
func (t *Table) Close() error { return t.shards.Close() }

// SetParallelism changes the per-query partition fan-out width within
// each shard (0 = GOMAXPROCS, 1 = serial). Modeled query costs do not
// depend on it; only wall-clock time changes.
func (t *Table) SetParallelism(n int) { t.shards.SetParallelism(n) }

// AutoMergeOptions tune the background merger of a table.
type AutoMergeOptions = fracture.AutoMergeOptions

// StartAutoMerge launches one background goroutine per shard that
// merges the shard whenever its fracture count or total fracture size
// crosses a threshold. Queries keep running during a background merge;
// the swap to the merged main is atomic and in-flight queries finish
// on the generation they started on.
func (t *Table) StartAutoMerge(opts AutoMergeOptions) error { return t.shards.StartAutoMerge(opts) }

// StopAutoMerge stops the background mergers, waiting for in-progress
// merges to finish, and returns the first error a background merge hit
// (nil if none).
func (t *Table) StopAutoMerge() error { return t.shards.StopAutoMerge() }

// NumFractures returns the current fracture count summed over shards
// (merge when this grows large; see the cost model).
func (t *Table) NumFractures() int { return t.shards.NumFractures() }

// SizeBytes returns the table's total on-disk size over all shards.
func (t *Table) SizeBytes() int64 { return t.shards.SizeBytes() }

// DropCaches empties all buffer pools, the per-shard plan caches and
// the result caches (if enabled): the next query of any shape runs
// fully cold — pages re-read, plans re-costed, point results
// re-executed. upibench wraps every modeled measurement in DropCaches,
// which is why its cold-cache numbers stay deterministic with the
// caching layers on.
func (t *Table) DropCaches() error { return t.shards.DropCaches() }

// QueryInfo reports the modeled cost of one query and what it
// touched.
type QueryInfo struct {
	// ModeledTime is the modeled disk time charged for this query's
	// own I/O (exact even under concurrency — it is the sum of the
	// query's replayed partition tapes). Only reported for queries
	// built WithStats.
	ModeledTime time.Duration
	// HeapEntries is the number of heap-file entries scanned.
	HeapEntries int
	// CutoffPointers is the number of cutoff-index pointers chased.
	CutoffPointers int
	// Partitions is 1 (main UPI) + the number of fractures consulted.
	Partitions int
	// BufferHits counts results served from the RAM insert buffer.
	BufferHits int
	// Plan names the access path the planner chose (planner-routed
	// runs only — automatic or forced).
	Plan string
	// PlanSource reports how the query was routed: PlanSourceStats
	// (fresh catalog, automatic planner), PlanSourceCached (planner
	// route whose plans were served from the generation-guarded plan
	// cache — a repeat of an already-costed shape), PlanSourceHeuristic
	// (stats absent or stale — or WithHeuristic — so the fixed
	// heuristic routing ran), or PlanSourceForced (WithPlanner).
	PlanSource string
	// Candidates is the number of R-Tree candidates or segment-index
	// entries a spatial query examined (spatial Run only).
	Candidates int
	// Explain is the EXPLAIN-style costed-plan listing (WithExplain
	// runs only).
	Explain string
}

func (q QueryInfo) String() string {
	s := fmt.Sprintf("modeled=%v heapEntries=%d cutoffPointers=%d partitions=%d",
		q.ModeledTime, q.HeapEntries, q.CutoffPointers, q.Partitions)
	if q.Plan != "" {
		s += " plan=" + q.Plan
	}
	if q.PlanSource != "" {
		s += " source=" + q.PlanSource
	}
	return s
}

// SpatialOptions tune a continuous-UPI table.
//
// Deprecated: pass the spatial functional options (WithNodePageSize,
// WithHeapPageSize) to BulkLoadSpatial instead; an existing struct can
// be bridged with WithSpatialOptions for one release.
type SpatialOptions struct {
	// NodePageSize is the R-Tree node page size (default 4 KiB).
	NodePageSize int
	// HeapPageSize is the clustered heap page size (default 64 KiB).
	HeapPageSize int
}

// SpatialTable is a continuous UPI (Section 5) over uncertain 2-D
// observations, with a secondary index on the uncertain segment
// attribute. Like discrete tables it is safe for concurrent use, owns
// a self-maintaining statistics catalog (a 2-D grid histogram of
// observation centroids plus a segment-attribute histogram, absorbed
// delta by delta on every Insert), and serves every query through
// Run(ctx, Query) — Circle and Segment descriptors routed through the
// cost-based spatial planner with the same PlanSource/WithExplain/
// WithStats/deadline-admission contract as Table.Run.
type SpatialTable struct {
	db      *DB
	tab     *cupi.Table
	catalog *stats.SpatialCatalog
	planner *planner.Spatial
}

// BulkLoadSpatial builds a continuous UPI from observations,
// configured with spatial-scoped functional options (WithNodePageSize,
// WithHeapPageSize) — the same options scheme as discrete tables, with
// the same scope validation: a database- or table-level option passed
// here errors instead of being silently ignored. Like table creation,
// it fails with ErrClosed once the DB is closed. The spatial
// statistics catalog is seeded from the same observations, so Run
// routes through the cost-based spatial planner from the first query.
func (db *DB) BulkLoadSpatial(name string, obs []*Observation, opts ...Option) (*SpatialTable, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	scfg, err := spatialConfig(opts)
	if err != nil {
		return nil, err
	}
	tab, err := cupi.BulkBuild(db.fs, name, obs, scfg)
	if err != nil {
		return nil, err
	}
	cat := stats.NewSpatialCatalog()
	cat.Seed(obs)
	s := &SpatialTable{
		db:      db,
		tab:     tab,
		catalog: cat,
		planner: planner.NewSpatial(tab, cat, db.disk.Params()),
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		// Lost the race against Close: undo and refuse.
		_ = tab.Close()
		return nil, ErrClosed
	}
	db.spatials = append(db.spatials, s)
	return s, nil
}

// Insert adds one observation after the initial load and absorbs its
// statistics delta. It fails with ErrClosed once the table is closed.
func (s *SpatialTable) Insert(o *Observation) error {
	if err := s.tab.Insert(o); err != nil {
		return err
	}
	s.catalog.AddObservation(o)
	return nil
}

// Close marks the spatial table closed: every subsequent query and
// Insert fails with ErrClosed, matching the DB.Close contract of
// discrete tables. In-flight queries finish normally. Closing twice is
// safe.
func (s *SpatialTable) Close() error { return s.tab.Close() }

// SizeBytes returns the spatial table's total on-disk size.
func (s *SpatialTable) SizeBytes() int64 { return s.tab.SizeBytes() }

// DropCaches empties the table's buffer pools.
func (s *SpatialTable) DropCaches() error { return s.tab.DropCaches() }
