package upidb

import (
	"context"
	"errors"
	"math"
	"testing"
)

func exampleTuples(t *testing.T) []*Tuple {
	t.Helper()
	mk := func(id uint64, name string, exist float64, inst, country []Alternative) *Tuple {
		instD, err := NewDiscrete(inst)
		if err != nil {
			t.Fatal(err)
		}
		countryD, err := NewDiscrete(country)
		if err != nil {
			t.Fatal(err)
		}
		return &Tuple{
			ID: id, Existence: exist,
			Det: []DetField{{Name: "Name", Value: name}},
			Unc: []UncField{
				{Name: "Institution", Dist: instD},
				{Name: "Country", Dist: countryD},
			},
		}
	}
	return []*Tuple{
		mk(1, "Alice", 0.9,
			[]Alternative{{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2}},
			[]Alternative{{Value: "US", Prob: 1.0}}),
		mk(2, "Bob", 1.0,
			[]Alternative{{Value: "MIT", Prob: 0.95}, {Value: "UCB", Prob: 0.05}},
			[]Alternative{{Value: "US", Prob: 1.0}}),
		mk(3, "Carol", 0.8,
			[]Alternative{{Value: "Brown", Prob: 0.6}, {Value: "U. Tokyo", Prob: 0.4}},
			[]Alternative{{Value: "US", Prob: 0.6}, {Value: "Japan", Prob: 0.4}}),
	}
}

func mustCreate(t testing.TB, opts ...Option) *DB {
	t.Helper()
	db, err := Create("", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFacadeEndToEnd(t *testing.T) {
	db := mustCreate(t)
	authors, err := db.CreateTable("authors", "Institution", []string{"Country"}, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range exampleTuples(t) {
		if err := authors.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	// Paper Query 1: {Alice 18%, Bob 95%}.
	res, err := authors.Run(ctx, PTQ("", "MIT", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Collect()
	if len(rs) != 2 || math.Abs(rs[0].Confidence-0.95) > 1e-9 || math.Abs(rs[1].Confidence-0.18) > 1e-9 {
		t.Fatalf("Query 1: %+v", rs)
	}
	// Streaming iteration yields the same rows in the same order.
	i := 0
	for r, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		if r.Tuple.ID != rs[i].Tuple.ID {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, r, rs[i])
		}
		i++
	}
	if i != res.Len() {
		t.Fatalf("stream yielded %d of %d", i, res.Len())
	}
	// Secondary PTQ with tailored access.
	res, err = authors.Run(ctx, PTQ("Country", "Japan", 0.3))
	if err != nil || res.Len() != 1 || res.Collect()[0].Tuple.ID != 3 {
		t.Fatalf("secondary: %v %+v", err, res)
	}
	// Top-k.
	res, err = authors.Run(ctx, TopKQuery("MIT", 1))
	if err != nil || res.Len() != 1 || res.Collect()[0].Tuple.ID != 2 {
		t.Fatalf("topk: %v %+v", err, res)
	}
	// Delete and flush + merge lifecycle.
	if err := authors.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := authors.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _ = authors.Run(ctx, PTQ("", "MIT", 0.1))
	if res.Len() != 1 || res.Collect()[0].Tuple.ID != 1 {
		t.Fatalf("after delete: %+v", res.Collect())
	}
	if err := authors.Merge(); err != nil {
		t.Fatal(err)
	}
	if authors.NumFractures() != 0 {
		t.Fatalf("fractures after merge: %d", authors.NumFractures())
	}
	res, _ = authors.Run(ctx, PTQ("", "MIT", 0.1))
	if res.Len() != 1 {
		t.Fatalf("after merge: %+v", res.Collect())
	}
	if authors.SizeBytes() == 0 || db.TotalSizeBytes() == 0 {
		t.Fatal("sizes should be positive")
	}
}

func TestFacadeQueryStats(t *testing.T) {
	db := mustCreate(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		exampleTuples(t), WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := authors.DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := authors.Run(context.Background(), PTQ("", "MIT", 0.01).WithStats())
	if err != nil {
		t.Fatal(err)
	}
	rs, info := res.Collect(), res.Info()
	if len(rs) != 2 { // MIT matches Alice 0.18, Bob 0.95
		t.Fatalf("%v %+v", err, rs)
	}
	if info.ModeledTime <= 0 || info.Partitions != 1 {
		t.Fatalf("info: %+v", info)
	}
	if info.CutoffPointers != 0 {
		t.Fatalf("no UCB cutoff pointers expected for MIT: %+v", info)
	}
	if info.String() == "" {
		t.Fatal("empty info string")
	}
	if db.DiskStats().BytesRead == 0 {
		t.Fatal("cold query should read from disk")
	}
}

func TestFacadeSpatial(t *testing.T) {
	db := mustCreate(t)
	seg, err := NewDiscrete([]Alternative{{Value: "seg-1", Prob: 0.7}, {Value: "seg-2", Prob: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	obs := []*Observation{
		{ID: 1, Loc: ConstrainedGaussian{Center: Point{X: 0, Y: 0}, Sigma: 10, Bound: 50}, Segment: seg},
		{ID: 2, Loc: ConstrainedGaussian{Center: Point{X: 1000, Y: 1000}, Sigma: 10, Bound: 50}, Segment: seg},
	}
	cars, err := db.BulkLoadSpatial("cars", obs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cres, err := cars.Run(ctx, Circle(Point{X: 0, Y: 0}, 100, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	rs := cres.Collect()
	if len(rs) != 1 || rs[0].Obs.ID != 1 {
		t.Fatalf("circle: %+v", rs)
	}
	sres, err := cars.Run(ctx, Segment("seg-1", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if rs = sres.Collect(); len(rs) != 2 {
		t.Fatalf("segment: %+v", rs)
	}
	if err := cars.Insert(&Observation{
		ID: 3, Loc: ConstrainedGaussian{Center: Point{X: 10, Y: 10}, Sigma: 10, Bound: 50}, Segment: seg,
	}); err != nil {
		t.Fatal(err)
	}
	cres, _ = cars.Run(ctx, Circle(Point{X: 0, Y: 0}, 100, 0.5))
	if rs = cres.Collect(); len(rs) != 2 {
		t.Fatalf("after insert: %+v", rs)
	}
	if cars.SizeBytes() == 0 {
		t.Fatal("size should be positive")
	}
	if err := cars.DropCaches(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeOpenTable(t *testing.T) {
	db := mustCreate(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"}, exampleTuples(t), WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := authors.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := db.OpenTable("authors", "Institution", []string{"Country"}, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := re.Run(context.Background(), PTQ("", "MIT", 0.1))
	if err != nil || res.Len() != 2 {
		t.Fatalf("reopened: %v %+v", err, res)
	}
	if _, err := db.OpenTable("missing", "X", nil); err == nil {
		t.Fatal("open of missing table accepted")
	}
}

// TestDBClose: closing the DB closes every table and rejects further
// table creation and opening with ErrClosed; closing twice is safe.
func TestDBClose(t *testing.T) {
	db := mustCreate(t)
	tuples := exampleTuples(t)
	a, err := db.CreateTable("a", "Institution", []string{"Country"}, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		if err := a.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	b, err := db.BulkLoadTable("b", "Institution", []string{"Country"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.StartAutoMerge(AutoMergeOptions{MaxFractures: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Every table is closed, mirroring Table.Close semantics.
	if _, err := a.Run(context.Background(), PTQ("", "MIT", 0.1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run on table a after DB.Close: %v", err)
	}
	if err := b.Insert(tuples[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert on table b after DB.Close: %v", err)
	}
	// New tables and lookups are rejected.
	if _, err := db.CreateTable("c", "X", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTable after Close: %v", err)
	}
	if _, err := db.BulkLoadTable("d", "X", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("BulkLoadTable after Close: %v", err)
	}
	if _, err := db.OpenTable("b", "Institution", []string{"Country"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("OpenTable after Close: %v", err)
	}
	if _, err := db.BulkLoadSpatial("s", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("BulkLoadSpatial after Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFacadeCustomDiskParams(t *testing.T) {
	p := DiskParams()
	p.Seek *= 2
	db := mustCreate(t, WithDiskParams(p))
	tab, err := db.CreateTable("t", "X", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDiscrete([]Alternative{{Value: "a", Prob: 1}})
	if err := tab.Insert(&Tuple{ID: 1, Existence: 1, Unc: []UncField{{Name: "X", Dist: d}}}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.DiskStats().Elapsed == 0 {
		t.Fatal("disk time should accumulate")
	}
}
