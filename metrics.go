package upidb

import (
	"io"
	"strconv"

	"upidb/internal/obs"
	"upidb/internal/shard"
)

// Observability types re-exported from internal/obs, so callers can
// hold snapshots without importing an internal package.
type (
	// MetricsSnapshot is a typed point-in-time view of every metric
	// series the database maintains, keyed by the canonical series name
	// (`name` or `name{label="value",...}`).
	MetricsSnapshot = obs.Snapshot
	// MetricsHistogram is one histogram series inside a snapshot.
	MetricsHistogram = obs.HistogramSnapshot
	// MetricsRegistry is the registry a DB reports into; internal
	// consumers (the HTTP server) register their own families on it so
	// one scrape covers every layer.
	MetricsRegistry = obs.Registry
)

// dbMetrics holds the facade-level metric handles: routing and
// admission counters incremented where the decisions are made, the
// always-on trace sink feeding scatter/scan/yield counters, and the
// observed-wall-clock vs modeled-cost histograms the admission
// calibration follow-on needs. Engine-level metrics (inserts, WAL,
// merges, ...) live in obs.EngineMetrics and reach the same registry
// through fracture.Config.Metrics.
type dbMetrics struct {
	routes        *obs.CounterVec // {source}: stats | heuristic | forced
	admissions    *obs.CounterVec // {verdict}: admitted | refused | unpriced
	plannedCost   *obs.Histogram  // modeled cost of the chosen plan, at admission
	scatters      *obs.Counter    // per-shard dispatches (scatter fan-out)
	scans         *obs.Counter    // partition scans / cursors started
	yields        *obs.Counter    // merged-stream results yielded
	partialDrains *obs.Counter    // streaming All abandoned mid-drain

	queryWall    *obs.HistogramVec // {kind}: observed end-to-end wall-clock
	queryModeled *obs.HistogramVec // {kind}: modeled disk time actually charged

	shardTuples    *obs.GaugeFuncVec // {table,shard}: catalog-tracked tuples
	shardFractures *obs.GaugeFuncVec // {table,shard}: current fracture count
}

// newDBMetrics resolves the facade metric families on r. Nil-safe: a
// nil registry yields an all-no-op bundle.
func newDBMetrics(r *obs.Registry) *dbMetrics {
	return &dbMetrics{
		routes:        r.CounterVec("upidb_planner_route_total", "Executed queries by routing decision.", "source"),
		admissions:    r.CounterVec("upidb_admission_total", "Admission-control verdicts for executed queries.", "verdict"),
		plannedCost:   r.Histogram("upidb_planner_modeled_cost_seconds", "Modeled cost of the chosen plan at admission time.", obs.CostBuckets),
		scatters:      r.Counter("upidb_shard_scatters_total", "Per-shard query dispatches (scatter fan-out)."),
		scans:         r.Counter("upidb_scan_partitions_total", "Partition scans and cursors started."),
		yields:        r.Counter("upidb_stream_yields_total", "Results yielded by merged streams."),
		partialDrains: r.Counter("upidb_stream_partial_drains_total", "Streaming iterations abandoned before exhaustion."),
		queryWall:     r.HistogramVec("upidb_query_wall_seconds", "Observed end-to-end query wall-clock, by plan/query kind.", obs.WallBuckets, "kind"),
		queryModeled:  r.HistogramVec("upidb_query_modeled_seconds", "Modeled disk time charged per query, by plan/query kind.", obs.CostBuckets, "kind"),
		shardTuples:   r.GaugeFuncVec("upidb_shard_tuples", "Catalog-tracked tuples per shard.", "table", "shard"),
		shardFractures: r.GaugeFuncVec("upidb_shard_fractures", "Current fracture count per shard.",
			"table", "shard"),
	}
}

// chainTrace prepends the metrics sink to a query's trace callback.
// The sink runs on every query — traced or not — so metrics report
// identically whether or not the caller attached WithTrace; events
// then flow on to the user's callback unchanged.
func (m *dbMetrics) chainTrace(user TraceFunc) TraceFunc {
	if m == nil {
		return user
	}
	return func(ev TraceEvent) {
		switch ev.Kind {
		case TraceDispatch:
			m.scatters.Inc()
		case TraceScanStart:
			m.scans.Inc()
		case TraceYield:
			m.yields.Inc()
		}
		if user != nil {
			user(ev)
		}
	}
}

// registerShardGauges binds the per-shard tuple/fracture gauge
// functions for one table. The gauges are evaluated at scrape time —
// one atomic read each — so the write path never maintains them;
// re-attaching a table (close + reopen) replaces the bindings.
func (m *dbMetrics) registerShardGauges(shards *shard.Table) {
	if m == nil {
		return
	}
	name := shards.Name()
	for i := 0; i < shards.NumShards(); i++ {
		label := strconv.Itoa(i)
		m.shardTuples.Register(func() float64 { return float64(shards.ShardTuples(i)) }, name, label)
		m.shardFractures.Register(func() float64 { return float64(shards.ShardFractures(i)) }, name, label)
	}
}

// Metrics returns a typed snapshot of every metric series the database
// maintains — engine (fracture/WAL/merge), shard, planner/admission
// and streaming families, plus whatever internal consumers (the HTTP
// server) registered on the same registry.
func (db *DB) Metrics() MetricsSnapshot { return db.reg.Snapshot() }

// WritePrometheus writes every metric series in Prometheus text
// exposition format (version 0.0.4) — the payload `GET /metrics`
// serves.
func (db *DB) WritePrometheus(w io.Writer) error { return db.reg.WritePrometheus(w) }

// MetricsRegistry exposes the DB's metric registry so co-located
// components (the HTTP server) can register their own families and
// appear in the same snapshot and scrape.
func (db *DB) MetricsRegistry() *MetricsRegistry { return db.reg }

// totalPartitions counts the partitions (main UPI + fractures, per
// shard) across every attached table — the scrape-time value of the
// upidb_fracture_partitions gauge.
func (db *DB) totalPartitions() float64 {
	db.mu.Lock()
	tables := append([]*Table(nil), db.tables...)
	db.mu.Unlock()
	n := 0
	for _, t := range tables {
		n += t.NumShards() + t.NumFractures()
	}
	return float64(n)
}
