package upidb

import "context"

// Prepared is a query descriptor validated and resolved once, for
// repeated execution. Prepare pays the per-call fixed costs a single
// Run re-pays every time — descriptor validation, attribute resolution
// against the table schema, explain-plannability checks — and Run(ctx)
// then replays only routing, admission and the snapshot. Planning
// itself is amortized one layer down: every planner-routed execution
// consults the per-shard plan cache, so a repeated shape re-costs
// nothing while the statistics generation and partition layout are
// unchanged, and Info().PlanSource reports PlanSourceCached for
// exactly those executions.
//
// A Prepared is immutable and safe for concurrent use: any number of
// goroutines may Run the same handle, each call returning its own
// Results. Derivation methods (Bind, WithTrace, WithStats) return new
// handles sharing the resolved state, so a server can keep one handle
// per hot query shape and derive per-request variants cheaply.
//
// The handle stays valid across inserts, flushes and merges — it holds
// no plan or snapshot of its own, so there is nothing to go stale:
// each Run sees the table as of that call, exactly like Table.Run.
type Prepared struct {
	t       *Table
	q       Query
	attr    string // resolved (possibly defaulted) attribute
	primary string
}

// Prepare validates q against the table once and returns a reusable
// execution handle. It fails exactly where Run would: spatial
// descriptors, unknown attributes (ErrUnknownAttr) and non-PTQ explain
// requests are rejected up front instead of on every execution.
func (t *Table) Prepare(q Query) (*Prepared, error) {
	attr, primary, err := t.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{t: t, q: q, attr: attr, primary: primary}, nil
}

// Run executes the prepared query, with Table.Run's exact semantics:
// the same routing (automatic planner when statistics are fresh),
// deadline admission, lazy Results handle, and byte-identical results,
// statistics and modeled cost. Safe to call concurrently.
func (p *Prepared) Run(ctx context.Context) (*Results, error) {
	return p.t.runResolved(ctx, p.q, p.attr, p.primary)
}

// Bind returns a handle for the same query shape with a different
// predicate value — the parameterized-query idiom: prepare the shape
// once, bind per request. The receiver is unchanged.
func (p *Prepared) Bind(value string) *Prepared {
	cp := *p
	cp.q.value = value
	return &cp
}

// WithTrace returns a handle whose executions invoke fn for every
// trace event, like Query.WithTrace. The receiver is unchanged, so
// per-request trace sinks do not serialize a shared handle.
func (p *Prepared) WithTrace(fn TraceFunc) *Prepared {
	cp := *p
	cp.q.trace = fn
	return &cp
}

// WithStats returns a handle whose executions measure modeled disk
// time, like Query.WithStats. The receiver is unchanged.
func (p *Prepared) WithStats() *Prepared {
	cp := *p
	cp.q.wantStats = true
	return &cp
}

// Query returns the descriptor the handle was prepared from (with any
// Bind/WithTrace/WithStats derivations applied).
func (p *Prepared) Query() Query { return p.q }
