package upidb

// Facade-level sharding tests: WithShards option validation and
// scoping, golden parity between a sharded and an unsharded table
// through the public Query API, durable sharded recovery through the
// PR 6 WAL machinery (one WAL + manifest per shard), and WithTrace
// span delivery.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestWithShardsValidation: n <= 0 is a typed refusal at both scopes,
// the DB-scope default flows into tables, and a table-scope value
// overrides it.
func TestWithShardsValidation(t *testing.T) {
	if _, err := Create("", WithShards(0)); !errors.Is(err, ErrInvalidShards) {
		t.Fatalf("Create(WithShards(0)): got %v, want ErrInvalidShards", err)
	}
	db := mustCreate(t)
	if _, err := db.CreateTable("bad", "X", nil, WithShards(-3)); !errors.Is(err, ErrInvalidShards) {
		t.Fatalf("CreateTable(WithShards(-3)): got %v, want ErrInvalidShards", err)
	}

	db, err := Create("", WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("inherit", "X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.NumShards(); got != 3 {
		t.Fatalf("DB-scope WithShards(3): table has %d shards", got)
	}
	tab, err = db.CreateTable("override", "X", nil, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.NumShards(); got != 1 {
		t.Fatalf("table-scope WithShards(1): table has %d shards", got)
	}
}

// shardQueries is the query surface the parity tests compare.
func shardQueries() []Query {
	return []Query{
		PTQ("", "v03", 0.05),
		PTQ("", "v03", 0.4),
		PTQ("Y", "yv02", 0.05),
		TopKQuery("v04", 9),
	}
}

func collectKeys(t *testing.T, tab *Table, q Query) [][2]float64 {
	t.Helper()
	res, err := tab.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var out [][2]float64
	for r, err := range res.All() {
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		out = append(out, [2]float64{float64(r.Tuple.ID), r.Confidence})
	}
	return out
}

// TestFacadeShardParity: the same logical workload behind WithShards(1)
// and WithShards(3) answers every query kind with identical result
// sets in identical global order, under both automatic and forced
// routing.
func TestFacadeShardParity(t *testing.T) {
	build := func(n int) *Table {
		db := mustCreate(t)
		var load []*Tuple
		for i := 0; i < 150; i++ {
			load = append(load, shardTestTuple(t, uint64(i+1), i+1))
		}
		tab, err := db.BulkLoadTable(fmt.Sprintf("parity%d", n), "X", []string{"Y"},
			load, WithCutoff(0.15), WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		id := uint64(1000)
		for f := 0; f < 3; f++ {
			for i := 0; i < 20; i++ {
				if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
					t.Fatal(err)
				}
				id++
			}
			if err := tab.Delete(uint64(f*9 + 1)); err != nil {
				t.Fatal(err)
			}
			if err := tab.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
			t.Fatal(err)
		}
		if err := tab.Delete(77); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	ref := build(1)
	sharded := build(3)
	if got := sharded.NumShards(); got != 3 {
		t.Fatalf("sharded table has %d shards", got)
	}
	for qi, q := range shardQueries() {
		for _, route := range []func(Query) Query{
			func(q Query) Query { return q },
			Query.WithPlanner,
			Query.WithHeuristic,
		} {
			want := collectKeys(t, ref, route(q))
			got := collectKeys(t, sharded, route(q))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("q=%d: sharded diverged\n got %v\nwant %v", qi, got, want)
			}
		}
	}
}

func shardTestTuple(t testing.TB, id uint64, v int) *Tuple {
	t.Helper()
	p := 0.3 + float64((id*7+uint64(v)*13)%60)/100
	val := func(i int) string { return fmt.Sprintf("v%02d", i%7) }
	x, err := NewDiscrete([]Alternative{
		{Value: val(v), Prob: p}, {Value: val(v + 1), Prob: (1 - p) * 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	y, err := NewDiscrete([]Alternative{{Value: "y" + val(v), Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return &Tuple{ID: id, Existence: 0.9, Unc: []UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}}}
}

// TestShardedDurability: a sharded durable table recovers through the
// per-shard WAL + manifest machinery — acknowledged writes survive
// Close/Open, the shard count is rediscovered from its sideband file,
// and reopening with a contradicting count is refused.
func TestShardedDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("authors", "X", []string{"Y"}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint64]bool{}
	for id := uint64(1); id <= 40; id++ {
		if err := tab.Insert(durTuple(t, id, durVal(id))); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged but unflushed: these must come back from the WALs.
	for id := uint64(41); id <= 50; id++ {
		if err := tab.Insert(durTuple(t, id, durVal(id))); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	if err := tab.Delete(7); err != nil {
		t.Fatal(err)
	}
	delete(live, 7)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err = db.OpenTable("authors", "X", []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.NumShards(); got != 2 {
		t.Fatalf("reopened with %d shards, want 2", got)
	}
	verifyLive(t, tab, live)

	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenTable("authors", "X", []string{"Y"}, WithShards(5)); err == nil {
		t.Fatal("reopen with wrong shard count succeeded")
	} else if !strings.Contains(err.Error(), "resharding") {
		t.Fatalf("want resharding refusal, got: %v", err)
	}
}

// TestQueryWithTrace: WithTrace delivers admission, per-shard dispatch,
// balanced scan spans and one yield per result through the public API.
func TestQueryWithTrace(t *testing.T) {
	db := mustCreate(t)
	tab, err := db.CreateTable("traced", "X", []string{"Y"}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 60; id++ {
		if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []TraceEvent
	q := PTQ("", "v03", 0.05).WithTrace(func(ev TraceEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	res, err := tab.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("traced query returned nothing")
	}

	counts := map[string]int{}
	dispatchShards := map[int]bool{}
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == TraceDispatch {
			dispatchShards[ev.Shard] = true
		}
	}
	if counts[TraceAdmission] != 1 {
		t.Fatalf("admission events: %d, want 1 (events: %v)", counts[TraceAdmission], counts)
	}
	if counts[TraceDispatch] != 2 || !dispatchShards[0] || !dispatchShards[1] {
		t.Fatalf("dispatch events %d over shards %v, want one per shard", counts[TraceDispatch], dispatchShards)
	}
	if counts[TraceScanStart] == 0 || counts[TraceScanStart] != counts[TraceScanEnd] {
		t.Fatalf("unbalanced scan spans: %d starts, %d ends", counts[TraceScanStart], counts[TraceScanEnd])
	}
	if counts[TraceYield] != n {
		t.Fatalf("%d yield events for %d results", counts[TraceYield], n)
	}
}
