package upidb

import "upidb/internal/fracture"

// TraceEvent is one span event of a traced query — see Query.WithTrace.
// It is an alias of the engine-internal event type, so values flow
// through every layer unchanged.
type TraceEvent = fracture.TraceEvent

// TraceFunc receives span events. Partition scans fan out across a
// worker pool and shards prime concurrently, so implementations must
// be safe for concurrent use (atomic counters or a locked sink) and
// fast — scan workers block on the call.
type TraceFunc = fracture.TraceFunc

// The trace event kinds Run emits, in the order a typical query
// produces them.
const (
	// TraceAdmission is the admission verdict: admitted (with the
	// modeled cost and remaining deadline), refused (deadline below the
	// cheapest plan's modeled cost), or admitted-unpriced (heuristic
	// route). Emitted exactly once per Run, before any shard is
	// touched.
	TraceAdmission = fracture.TraceAdmission
	// TraceDispatch marks one shard receiving its per-shard request
	// during scatter (Shard identifies it; Detail is the shard's store
	// name).
	TraceDispatch = fracture.TraceDispatch
	// TraceScanStart marks one partition scan or cursor starting
	// (Shard + Part identify the partition; Detail is its table name).
	TraceScanStart = fracture.TraceScanStart
	// TraceScanEnd marks one partition finishing — scanned to
	// completion, exhausted, or cancelled.
	TraceScanEnd = fracture.TraceScanEnd
	// TraceYield marks the merged stream yielding one result (Shard is
	// the producing shard). Streaming consumption only; a materialized
	// Collect has no per-result milestone.
	TraceYield = fracture.TraceYield
)
