package upidb

// Concurrent spatial soak: goroutines insert observations while others
// run circle and segment queries through every consumption mode
// (materialized Run, streaming Run, partial streams, legacy wrappers),
// then the final state is validated against exact ground truth. Run
// under -race in CI; against the pre-lock cupi.Table this fails
// immediately with a data-race report on the rows map and the in-place
// R-Tree mutation.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
)

const (
	soakArea    = 1000.0
	soakSegs    = 9
	soakRadius  = 220.0
	soakCircTh  = 0.4
	soakSegQT   = 0.3
	soakSpatial = "spatial-soak"
)

// soakObs is deterministic in id: same ID, same observation.
func soakObs(id uint64) *Observation {
	x := float64((id*131)%1000) / 1000 * soakArea
	y := float64((id*197)%1000) / 1000 * soakArea
	p := 0.35 + float64((id*13)%60)/100
	seg, err := NewDiscrete([]Alternative{
		{Value: fmt.Sprintf("seg%02d", id%soakSegs), Prob: p},
		{Value: fmt.Sprintf("seg%02d", (id+1)%soakSegs), Prob: (1 - p) * 0.9},
	})
	if err != nil {
		panic(err)
	}
	return &Observation{
		ID:      id,
		Loc:     ConstrainedGaussian{Center: Point{X: x, Y: y}, Sigma: 12, Bound: 36},
		Segment: seg,
	}
}

// soakCircleTruth computes the exact circle answer over a set of IDs.
func soakCircleTruth(ids []uint64, q Point, radius, th float64) map[uint64]float64 {
	out := make(map[uint64]float64)
	for _, id := range ids {
		o := soakObs(id)
		if p := o.Loc.ProbInCircle(q, radius); p >= th {
			out[id] = p
		}
	}
	return out
}

// soakSegTruth computes the exact segment answer over a set of IDs.
func soakSegTruth(ids []uint64, seg string, qt float64) map[uint64]float64 {
	out := make(map[uint64]float64)
	for _, id := range ids {
		o := soakObs(id)
		if p := o.Segment.P(seg); p > 0 && p >= qt {
			out[id] = p
		}
	}
	return out
}

func TestSoakConcurrentSpatial(t *testing.T) {
	perWriter := 400
	queryRounds := 40
	if testing.Short() {
		perWriter = 120
		queryRounds = 15
	}
	const (
		writers = 2
		readers = 2
		baseN   = 500
	)

	baseIDs := make([]uint64, baseN)
	var base []*Observation
	for i := range baseIDs {
		baseIDs[i] = uint64(i + 1)
		base = append(base, soakObs(baseIDs[i]))
	}
	db := mustCreate(t)
	tab, err := db.BulkLoadSpatial(soakSpatial, base)
	if err != nil {
		t.Fatal(err)
	}

	queryPoints := []Point{{X: 250, Y: 250}, {X: 700, Y: 400}, {X: 500, Y: 800}}
	// Base observations are visible to every query snapshot, so each
	// query's answer must contain at least the base ground truth.
	baseCircle := make([]map[uint64]float64, len(queryPoints))
	for i, q := range queryPoints {
		baseCircle[i] = soakCircleTruth(baseIDs, q, soakRadius, soakCircTh)
		if len(baseCircle[i]) < 3 {
			t.Fatalf("query point %d matches only %d base observations; workload too sparse", i, len(baseCircle[i]))
		}
	}
	baseSeg := soakSegTruth(baseIDs, "seg03", soakSegQT)
	if len(baseSeg) < 10 {
		t.Fatalf("segment workload too sparse: %d base matches", len(baseSeg))
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := uint64(10_000 * (w + 1))
			for i := 0; i < perWriter; i++ {
				if err := tab.Insert(soakObs(start + uint64(i))); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	checkCircle := func(rs []SpatialResult, qi int) error {
		q := queryPoints[qi]
		seen := make(map[uint64]bool, len(rs))
		for _, r := range rs {
			if seen[r.Obs.ID] {
				return fmt.Errorf("duplicate result %d", r.Obs.ID)
			}
			seen[r.Obs.ID] = true
			if r.Confidence < soakCircTh {
				return fmt.Errorf("result %d below threshold: %v", r.Obs.ID, r.Confidence)
			}
			want := soakObs(r.Obs.ID).Loc.ProbInCircle(q, soakRadius)
			if math.Abs(want-r.Confidence) > 1e-9 {
				return fmt.Errorf("result %d confidence %v, want %v", r.Obs.ID, r.Confidence, want)
			}
		}
		for id := range baseCircle[qi] {
			if !seen[id] {
				return fmt.Errorf("base observation %d missing from snapshot answer", id)
			}
		}
		return nil
	}

	for rr := 0; rr < readers; rr++ {
		wg.Add(1)
		go func(rr int) {
			defer wg.Done()
			for i := 0; i < queryRounds; i++ {
				qi := (rr + i) % len(queryPoints)
				// Materialized consumption.
				res, err := tab.Run(ctx, Circle(queryPoints[qi], soakRadius, soakCircTh))
				if err != nil {
					errs <- err
					return
				}
				if err := checkCircle(res.Collect(), qi); err != nil {
					errs <- fmt.Errorf("reader %d round %d collect: %w", rr, i, err)
					return
				}
				// Streaming consumption, fully drained.
				res, err = tab.Run(ctx, Circle(queryPoints[qi], soakRadius, soakCircTh))
				if err != nil {
					errs <- err
					return
				}
				var streamed []SpatialResult
				for r, err := range res.All() {
					if err != nil {
						errs <- err
						return
					}
					streamed = append(streamed, r)
				}
				if err := checkCircle(streamed, qi); err != nil {
					errs <- fmt.Errorf("reader %d round %d stream: %w", rr, i, err)
					return
				}
				// Partially drained stream: must release the table so
				// writers keep making progress.
				res, err = tab.Run(ctx, Circle(queryPoints[qi], soakRadius, soakCircTh))
				if err != nil {
					errs <- err
					return
				}
				for _, err := range res.All() {
					if err != nil {
						errs <- err
						return
					}
					break
				}
				// Segment query via the planner-default route.
				sres, err := tab.Run(ctx, Segment("seg03", soakSegQT))
				if err != nil {
					errs <- err
					return
				}
				rs := sres.Collect()
				seen := make(map[uint64]bool, len(rs))
				for _, r := range rs {
					if seen[r.Obs.ID] {
						errs <- fmt.Errorf("duplicate segment result %d", r.Obs.ID)
						return
					}
					seen[r.Obs.ID] = true
					want := soakObs(r.Obs.ID).Segment.P("seg03")
					if math.Abs(want-r.Confidence) > 1e-12 || r.Confidence < soakSegQT {
						errs <- fmt.Errorf("segment result %d confidence %v, want %v", r.Obs.ID, r.Confidence, want)
						return
					}
				}
				for id := range baseSeg {
					if !seen[id] {
						errs <- fmt.Errorf("base observation %d missing from segment answer", id)
						return
					}
				}
			}
		}(rr)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: exact ground truth over base + all inserted IDs.
	allIDs := append([]uint64(nil), baseIDs...)
	for w := 0; w < writers; w++ {
		start := uint64(10_000 * (w + 1))
		for i := 0; i < perWriter; i++ {
			allIDs = append(allIDs, start+uint64(i))
		}
	}
	for qi, q := range queryPoints {
		truth := soakCircleTruth(allIDs, q, soakRadius, soakCircTh)
		res, err := tab.Run(ctx, Circle(q, soakRadius, soakCircTh).WithStats())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Collect()
		if len(got) != len(truth) {
			t.Fatalf("final circle %d: %d results, want %d", qi, len(got), len(truth))
		}
		for _, r := range got {
			if want, ok := truth[r.Obs.ID]; !ok || math.Abs(want-r.Confidence) > 1e-9 {
				t.Fatalf("final circle %d: result %d mismatch", qi, r.Obs.ID)
			}
		}
		if src := res.Info().PlanSource; src != PlanSourceStats {
			t.Fatalf("final circle %d not planner-routed after %d inserts: %q", qi, len(allIDs)-baseN, src)
		}
	}
	truth := soakSegTruth(allIDs, "seg03", soakSegQT)
	segRes, err := tab.Run(ctx, Segment("seg03", soakSegQT))
	if err != nil {
		t.Fatal(err)
	}
	legacy := segRes.Collect()
	if len(legacy) != len(truth) {
		t.Fatalf("final segment: %d results, want %d", len(legacy), len(truth))
	}
	for _, r := range legacy {
		if want, ok := truth[r.Obs.ID]; !ok || math.Abs(want-r.Confidence) > 1e-12 {
			t.Fatalf("final segment: result %d mismatch", r.Obs.ID)
		}
	}
}
