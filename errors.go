package upidb

import (
	"errors"

	"upidb/internal/fracture"
	"upidb/internal/planner"
	"upidb/internal/upi"
)

// Typed sentinel errors returned by the query API. Every layer of the
// engine returns (or wraps) these same values, so errors.Is works on
// any error that crosses the facade regardless of where it originated.
var (
	// ErrUnknownAttr reports a query on an attribute the table has no
	// index for — neither the primary clustered attribute nor any
	// secondary-indexed one.
	ErrUnknownAttr = upi.ErrUnknownAttr

	// ErrNoStats reports a forced planned query (WithPlanner or
	// WithExplain) on an attribute without seeded statistics: the
	// table was reopened and
	// has not merged yet, or a BuildStats subset dropped the
	// attribute. Automatic routing never returns it — Run falls back
	// to heuristic routing instead.
	ErrNoStats = planner.ErrNoStats

	// ErrCanceled reports a query stopped by its context, or refused
	// by deadline-aware admission. For a context stop, returned errors
	// wrap both ErrCanceled and the context's own error, so
	// errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// also matches; an admission refusal (remaining deadline below the
	// plan's modeled cost) wraps ErrCanceled alone, since the deadline
	// had not yet expired. A query that fails either way has charged
	// no further modeled I/O and holds no partition pins.
	ErrCanceled = upi.ErrCanceled

	// ErrClosed reports an operation on a table after Table.Close or
	// DB.Close, including creating or opening tables on a closed DB.
	ErrClosed = fracture.ErrClosed

	// ErrInvalidShards reports a WithShards option with n < 1. A table
	// always has at least one shard; WithShards(1) is the unsharded
	// engine.
	ErrInvalidShards = errors.New("upidb: WithShards requires at least 1 shard")

	// ErrStreamConsumed reports a Results handle consumed twice after a
	// partial drain: an All iterator was abandoned mid-stream (the
	// consumer broke out before exhaustion), so the remaining results
	// were discarded and their scans cancelled. A second All yields
	// this error instead of silently resuming mid-stream; Collect and
	// Len report an empty result set and Err returns it. Run the query
	// again for a fresh stream.
	ErrStreamConsumed = errors.New("upidb: result stream already partially consumed")
)
