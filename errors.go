package upidb

import (
	"upidb/internal/fracture"
	"upidb/internal/planner"
	"upidb/internal/upi"
)

// Typed sentinel errors returned by the query API. Every layer of the
// engine returns (or wraps) these same values, so errors.Is works on
// any error that crosses the facade regardless of where it originated.
var (
	// ErrUnknownAttr reports a query on an attribute the table has no
	// index for — neither the primary clustered attribute nor any
	// secondary-indexed one.
	ErrUnknownAttr = upi.ErrUnknownAttr

	// ErrNoStats reports a planned query (WithPlanner, Explain,
	// QueryPlanned) without the statistics it needs: BuildStats was
	// never called, or did not cover the queried attribute.
	ErrNoStats = planner.ErrNoStats

	// ErrCanceled reports a query stopped by its context. Returned
	// errors wrap both ErrCanceled and the context's own error, so
	// errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// also matches. A query that fails this way has stopped charging
	// modeled I/O and released its partition pins.
	ErrCanceled = upi.ErrCanceled

	// ErrClosed reports an operation on a table after Close.
	ErrClosed = fracture.ErrClosed
)
