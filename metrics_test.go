package upidb

// Observability tests: metrics–trace parity (the counters the always-on
// trace sink maintains must equal the event counts a WithTrace callback
// observes, and an untraced run must report identically), engine-level
// counter accuracy through insert/delete/flush/merge/WAL, per-shard
// stats exposure, and the Prometheus exposition of the whole registry.

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// buildMetricsTable loads a sharded table and leaves it with real
// fractures so queries touch multiple partitions per shard.
func buildMetricsTable(t *testing.T, db *DB, name string, shards int) *Table {
	t.Helper()
	var load []*Tuple
	for i := 0; i < 140; i++ {
		load = append(load, shardTestTuple(t, uint64(i+1), i+1))
	}
	tab, err := db.BulkLoadTable(name, "X", []string{"Y"}, load,
		WithCutoff(0.15), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(1000)
	for f := 0; f < 2; f++ {
		for i := 0; i < 15; i++ {
			if err := tab.Insert(shardTestTuple(t, id, int(id))); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func counterDelta(before, after MetricsSnapshot, series string) int64 {
	return after.Counters[series] - before.Counters[series]
}

// TestMetricsTraceParity: for a PTQ, a broad (full-scan-leaning)
// secondary PTQ, and a top-k query, at 1, 2, and 7 shards, the
// scatter/scan/yield counter deltas equal the TraceDispatch /
// TraceScanStart / TraceYield event counts a trace callback sees — and
// running the identical query untraced moves the counters by exactly
// the same amounts.
func TestMetricsTraceParity(t *testing.T) {
	queries := []Query{
		PTQ("", "v03", 0.05),
		PTQ("Y", "yv02", 0.01),
		TopKQuery("v04", 9),
	}
	for _, shards := range []int{1, 2, 7} {
		db := mustCreate(t)
		tab := buildMetricsTable(t, db, fmt.Sprintf("par%d", shards), shards)
		for qi, base := range queries {
			name := fmt.Sprintf("shards=%d/q=%d", shards, qi)
			before := db.Metrics()

			// Trace callbacks fire from concurrent per-shard goroutines.
			var dispatches, scans, yields atomic.Int64
			q := base.WithTrace(func(ev TraceEvent) {
				switch ev.Kind {
				case TraceDispatch:
					dispatches.Add(1)
				case TraceScanStart:
					scans.Add(1)
				case TraceYield:
					yields.Add(1)
				}
			})
			drain := func(q Query) int {
				res, err := tab.Run(context.Background(), q)
				if err != nil {
					t.Fatalf("%s: run: %v", name, err)
				}
				n := 0
				for _, err := range res.All() {
					if err != nil {
						t.Fatalf("%s: stream: %v", name, err)
					}
					n++
				}
				return n
			}
			n := drain(q)
			traced := db.Metrics()

			if n == 0 {
				t.Fatalf("%s: query yielded nothing; parity vacuous", name)
			}
			for series, want := range map[string]int64{
				"upidb_shard_scatters_total":  dispatches.Load(),
				"upidb_scan_partitions_total": scans.Load(),
				"upidb_stream_yields_total":   yields.Load(),
			} {
				if got := counterDelta(before, traced, series); got != want {
					t.Errorf("%s: traced %s delta = %d, trace saw %d", name, series, got, want)
				}
			}
			if dispatches.Load() == 0 || scans.Load() == 0 || yields.Load() != int64(n) {
				t.Errorf("%s: trace counts dispatches=%d scans=%d yields=%d results=%d",
					name, dispatches.Load(), scans.Load(), yields.Load(), n)
			}

			// Untraced run of the same query: identical deltas.
			if got := drain(base); got != n {
				t.Fatalf("%s: untraced run yielded %d, traced %d", name, got, n)
			}
			untraced := db.Metrics()
			for _, series := range []string{
				"upidb_shard_scatters_total",
				"upidb_scan_partitions_total",
				"upidb_stream_yields_total",
			} {
				tr := counterDelta(before, traced, series)
				un := counterDelta(traced, untraced, series)
				if tr != un {
					t.Errorf("%s: %s traced delta %d != untraced delta %d", name, series, tr, un)
				}
			}
		}
		// Routing and admission verdicts were counted for every run.
		final := db.Metrics()
		var routes, verdicts int64
		for series, v := range final.Counters {
			if strings.HasPrefix(series, "upidb_planner_route_total{") {
				routes += v
			}
			if strings.HasPrefix(series, "upidb_admission_total{") {
				verdicts += v
			}
		}
		want := int64(2 * len(queries)) // traced + untraced per query
		if routes != want || verdicts != want {
			t.Errorf("shards=%d: routes=%d verdicts=%d, want %d each", shards, routes, verdicts, want)
		}
		// Wall-clock and modeled-cost histograms got one observation per
		// executed query, labeled by kind.
		var wall, modeled int64
		for series, h := range final.Histograms {
			if strings.HasPrefix(series, "upidb_query_wall_seconds{") {
				wall += h.Count
			}
			if strings.HasPrefix(series, "upidb_query_modeled_seconds{") {
				modeled += h.Count
			}
		}
		if wall != want || modeled != want {
			t.Errorf("shards=%d: wall obs=%d modeled obs=%d, want %d each", shards, wall, modeled, want)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineMetricsCounters: the fracture-layer counters track
// insert/delete/flush/merge and WAL activity exactly on a durable
// table, and the merge/fsync histograms record matching observations.
func TestEngineMetricsCounters(t *testing.T) {
	db, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("engine", "X", nil)
	if err != nil {
		t.Fatal(err)
	}
	const inserts, deletes = 30, 3
	for i := 0; i < inserts; i++ {
		if err := tab.Insert(shardTestTuple(t, uint64(i+1), i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < deletes; i++ {
		if err := tab.Delete(uint64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}

	m := db.Metrics()
	if got := m.Counters["upidb_fracture_inserts_total"]; got != inserts {
		t.Errorf("inserts = %d, want %d", got, inserts)
	}
	if got := m.Counters["upidb_fracture_deletes_total"]; got != deletes {
		t.Errorf("deletes = %d, want %d", got, deletes)
	}
	if got := m.Counters["upidb_fracture_flushes_total"]; got < 1 {
		t.Errorf("flushes = %d, want >= 1", got)
	}
	if got := m.Counters["upidb_fracture_merges_total"]; got != 1 {
		t.Errorf("merges = %d, want 1", got)
	}
	appends := m.Counters["upidb_wal_appends_total"]
	if appends < inserts+deletes {
		t.Errorf("wal appends = %d, want >= %d", appends, inserts+deletes)
	}
	if got := m.Histograms["upidb_wal_fsync_seconds"].Count; got != appends {
		t.Errorf("fsync observations = %d, want %d (one per append)", got, appends)
	}
	if got := m.Histograms["upidb_fracture_merge_seconds"].Count; got != 1 {
		t.Errorf("merge duration observations = %d, want 1", got)
	}
	if got := m.Gauges["upidb_fracture_partitions"]; got != 1 {
		t.Errorf("partitions gauge = %g, want 1 after full merge", got)
	}
}

// TestMetricsPartialDrain: abandoning a stream mid-drain releases the
// snapshot pins (counted) and bumps the partial-drain counter.
func TestMetricsPartialDrain(t *testing.T) {
	db := mustCreate(t)
	tab := buildMetricsTable(t, db, "drainy", 2)
	before := db.Metrics()

	res, err := tab.Run(context.Background(), PTQ("", "v03", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for range res.All() {
		break // abandon immediately
	}
	after := db.Metrics()
	if got := counterDelta(before, after, "upidb_stream_partial_drains_total"); got != 1 {
		t.Errorf("partial drains delta = %d, want 1", got)
	}
	if got := counterDelta(before, after, "upidb_stream_pin_releases_total"); got == 0 {
		t.Error("abandoning a stream released no pins")
	}
}

// TestStatsInfoPerShard: the per-shard breakdown covers every shard and
// sums back to the table-level aggregates.
func TestStatsInfoPerShard(t *testing.T) {
	db := mustCreate(t)
	tab := buildMetricsTable(t, db, "pershard", 3)
	si := tab.StatsInfo()
	if len(si.Shards) != 3 {
		t.Fatalf("per-shard entries = %d, want 3", len(si.Shards))
	}
	var tuples, unabsorbed int64
	var fractures int
	for i, s := range si.Shards {
		if s.Shard != i {
			t.Errorf("entry %d has shard index %d", i, s.Shard)
		}
		if s.Staleness < 0 || s.Staleness > 1 {
			t.Errorf("shard %d staleness %g out of [0,1]", i, s.Staleness)
		}
		tuples += s.Tuples
		unabsorbed += s.Unabsorbed
		fractures += s.Fractures
	}
	if tuples != si.TrackedTuples {
		t.Errorf("per-shard tuples sum %d != tracked %d", tuples, si.TrackedTuples)
	}
	if unabsorbed != si.Unabsorbed {
		t.Errorf("per-shard unabsorbed sum %d != total %d", unabsorbed, si.Unabsorbed)
	}
	if fractures == 0 {
		t.Error("no fractures reported across shards after flushes")
	}
	// The scrape-time shard gauges agree with the same breakdown.
	m := db.Metrics()
	for i, s := range si.Shards {
		series := fmt.Sprintf(`upidb_shard_tuples{shard="%d",table="pershard"}`, i)
		alt := fmt.Sprintf(`upidb_shard_tuples{table="pershard",shard="%d"}`, i)
		got, ok := m.Gauges[series]
		if !ok {
			got, ok = m.Gauges[alt]
		}
		if !ok || int64(got) != s.Tuples {
			t.Errorf("shard %d tuple gauge = %g (present=%v), want %d", i, got, ok, s.Tuples)
		}
	}
}

// TestDBPrometheusExposition: one scrape covers engine, shard, planner
// and streaming families in valid 0.0.4 text format.
func TestDBPrometheusExposition(t *testing.T) {
	db := mustCreate(t)
	tab := buildMetricsTable(t, db, "expo", 2)
	res, err := tab.Run(context.Background(), PTQ("", "v03", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
	}

	var b strings.Builder
	if err := db.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE upidb_fracture_inserts_total counter",
		"# TYPE upidb_shard_scatters_total counter",
		"# TYPE upidb_planner_route_total counter",
		"# TYPE upidb_admission_total counter",
		"# TYPE upidb_stream_yields_total counter",
		"# TYPE upidb_query_wall_seconds histogram",
		"# TYPE upidb_fracture_partitions gauge",
		"# TYPE upidb_shard_tuples gauge",
		`upidb_query_wall_seconds_bucket{`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
