package upidb

import (
	"fmt"

	"upidb/internal/cupi"
	"upidb/internal/fracture"
	"upidb/internal/obs"
	"upidb/internal/sim"
	"upidb/internal/storage"
)

// Option configures a database at Open/Create time, a single discrete
// table at CreateTable/BulkLoadTable/OpenTable time, or a spatial
// table at BulkLoadSpatial time. Database-level options (backend
// selection, disk cost constants) are rejected at table and spatial
// scope; table-tuning options given at database scope become the
// defaults every table inherits, and are rejected at spatial scope;
// spatial options (page sizes) are valid only at spatial scope.
type Option func(*config)

// optionScope is where a list of Options is being resolved. Every
// option validates the scope it is applied at, so a misplaced option
// fails loudly at resolution time instead of being silently ignored.
type optionScope int

const (
	scopeDB optionScope = iota
	scopeTable
	scopeSpatial
)

// config accumulates the effect of a list of Options. table holds the
// one canonical per-table configuration (fracture.Config) and spatial
// the continuous-UPI configuration; nothing is duplicated beside them.
type config struct {
	params    sim.Params
	dir       string
	mem       bool
	backend   storage.Backend
	table     fracture.Config
	spatial   cupi.Options
	durable   *bool
	autoMerge *fracture.AutoMergeOptions
	shards    int
	scope     optionScope
	err       error
}

func (c *config) dbOnly(name string) bool {
	if c.scope != scopeDB {
		c.setErr(fmt.Errorf("upidb: %s is a database-level option; pass it to Open or Create", name))
		return false
	}
	return true
}

// tableScoped accepts db scope (sets the inherited default) and table
// scope (per-table override), and rejects spatial scope: a spatial
// table has no fractures, buffer or statistics catalog to tune.
func (c *config) tableScoped(name string) bool {
	if c.scope == scopeSpatial {
		c.setErr(fmt.Errorf("upidb: %s is a table-level option; pass it to Create, Open or a discrete-table constructor", name))
		return false
	}
	return true
}

func (c *config) spatialOnly(name string) bool {
	if c.scope != scopeSpatial {
		c.setErr(fmt.Errorf("upidb: %s is a spatial-level option; pass it to BulkLoadSpatial", name))
		return false
	}
	return true
}

func (c *config) setErr(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithDiskBackend stores every byte in real files under path, with
// real fsync — the one-option durability switch. Tables default to
// Durable (WAL + manifest crash recovery); combine with
// WithDurability(false) to run on disk without the WAL.
func WithDiskBackend(path string) Option {
	return func(c *config) {
		if !c.dbOnly("WithDiskBackend") {
			return
		}
		c.dir = path
		c.mem = false
	}
}

// WithMemBackend stores every byte in memory (the default): runs are
// hermetic and modeled costs deterministic, and nothing survives the
// process unless WithDurability(true) pairs it with an
// externally-shared backend.
func WithMemBackend() Option {
	return func(c *config) {
		if !c.dbOnly("WithMemBackend") {
			return
		}
		c.mem = true
		c.backend = nil
	}
}

// WithBackend plugs in a caller-supplied storage backend. Crash tests
// use it to reopen a database over the bytes a "killed" instance left
// behind; custom implementations (encryption, tracing, quotas) slot in
// the same way.
func WithBackend(b storage.Backend) Option {
	return func(c *config) {
		if !c.dbOnly("WithBackend") {
			return
		}
		c.backend = b
		c.mem = false
	}
}

// WithDiskParams sets the simulated-disk cost constants (defaults:
// the paper's Table 6 values). The model prices every backend's I/O,
// including the real-disk backend's.
func WithDiskParams(p sim.Params) Option {
	return func(c *config) {
		if !c.dbOnly("WithDiskParams") {
			return
		}
		c.params = p
	}
}

// WithDurability overrides the backend's durability default (disk:
// on, memory: off). Durable tables WAL-log every Insert/Delete before
// acknowledging it, commit flushes and merges through an atomically
// renamed manifest, and recover all acknowledged writes on OpenTable.
func WithDurability(on bool) Option {
	return func(c *config) {
		if !c.tableScoped("WithDurability") {
			return
		}
		c.durable = &on
	}
}

// WithCutoff sets the cutoff threshold C (Section 3.1): alternatives
// with confidence below C live in the cutoff index instead of being
// duplicated in the heap file. 0 disables the cutoff index.
func WithCutoff(c float64) Option {
	return func(cfg *config) {
		if !cfg.tableScoped("WithCutoff") {
			return
		}
		cfg.table.UPI.Cutoff = c
	}
}

// WithMaxPointers caps pointers per secondary-index entry
// (0 = unlimited).
func WithMaxPointers(n int) Option {
	return func(c *config) {
		if !c.tableScoped("WithMaxPointers") {
			return
		}
		c.table.UPI.MaxPointers = n
	}
}

// WithBufferTuples sets the RAM insert-buffer capacity before an
// automatic flush into a new fracture (0 = manual Flush only).
func WithBufferTuples(n int) Option {
	return func(c *config) {
		if !c.tableScoped("WithBufferTuples") {
			return
		}
		c.table.BufferTuples = n
	}
}

// WithParallelism bounds the worker goroutines one query fans out
// across the main UPI and the fractures (0 = GOMAXPROCS, 1 = serial
// scan). Modeled query costs are identical at every setting; only
// wall-clock time changes.
func WithParallelism(n int) Option {
	return func(c *config) {
		if !c.tableScoped("WithParallelism") {
			return
		}
		c.table.Parallelism = n
	}
}

// WithStatsStaleness sets the staleness ratio (unabsorbed statistics
// deltas over tracked tuples) up to which Run trusts the table's
// statistics catalog and routes PTQs through the cost-based planner
// automatically. 0 means the default (10%); a negative value disables
// automatic planner routing entirely.
func WithStatsStaleness(r float64) Option {
	return func(c *config) {
		if !c.tableScoped("WithStatsStaleness") {
			return
		}
		c.table.StatsStaleness = r
	}
}

// WithShards hash-partitions each table the option reaches across n
// independent stores, shard-per-core style: every shard owns its own
// RAM buffer, fracture set, merge pipeline, statistics catalog and —
// when durable — WAL and manifest, so mutations and merges scale with
// cores while queries scatter-gather one globally confidence-ordered
// stream. At database scope it sets the default every table inherits;
// at table scope it overrides that default for one table. n must be
// at least 1 (1 = the unsharded engine, byte-identical layout and
// modeled costs); anything lower is rejected with ErrInvalidShards
// when the option list is resolved. On OpenTable the persisted shard
// count is authoritative — an explicit n that contradicts it errors
// rather than silently resharding.
func WithShards(n int) Option {
	return func(c *config) {
		if !c.tableScoped("WithShards") {
			return
		}
		if n < 1 {
			c.setErr(fmt.Errorf("%w: got %d", ErrInvalidShards, n))
			return
		}
		c.shards = n
	}
}

// WithAutoMerge starts the background merger on every table the
// option reaches: fractures are folded into the main UPI whenever
// their count or total size crosses the given thresholds.
func WithAutoMerge(opts AutoMergeOptions) Option {
	return func(c *config) {
		if !c.tableScoped("WithAutoMerge") {
			return
		}
		am := opts
		c.autoMerge = &am
	}
}

// WithResultCache enables the opt-in point-query result cache on every
// table the option reaches, holding up to n materialized result sets
// per shard. Cached entries replay the original execution's results
// and statistics byte-for-byte — including modeled cost — and any
// insert or delete touching a shard invalidates that shard's entries,
// so a hit is indistinguishable from a re-execution. n = 0 (the
// default) disables the cache; DropCaches purges it.
func WithResultCache(n int) Option {
	return func(c *config) {
		if !c.tableScoped("WithResultCache") {
			return
		}
		if n < 0 {
			c.setErr(fmt.Errorf("upidb: WithResultCache capacity must be non-negative; got %d", n))
			return
		}
		c.table.ResultCache = n
	}
}

// WithNodePageSize sets a spatial table's R-Tree node page size
// (default 4 KiB). Spatial scope only.
func WithNodePageSize(n int) Option {
	return func(c *config) {
		if !c.spatialOnly("WithNodePageSize") {
			return
		}
		c.spatial.NodePageSize = n
	}
}

// WithHeapPageSize sets a spatial table's clustered heap page size
// (default 64 KiB). Spatial scope only.
func WithHeapPageSize(n int) Option {
	return func(c *config) {
		if !c.spatialOnly("WithHeapPageSize") {
			return
		}
		c.spatial.HeapPageSize = n
	}
}

// WithSpatialOptions applies a legacy SpatialOptions struct wholesale.
//
// Deprecated: pass WithNodePageSize and WithHeapPageSize directly.
func WithSpatialOptions(o SpatialOptions) Option {
	return func(c *config) {
		if !c.spatialOnly("WithSpatialOptions") {
			return
		}
		c.spatial.NodePageSize = o.NodePageSize
		c.spatial.HeapPageSize = o.HeapPageSize
	}
}

// markerFile is the database marker distinguishing Create from Open.
// It is sideband: no modeled charge, never routed.
const markerFile = "upidb.meta"

// Create initializes a new database. With dir == "" (and no backend
// option) everything lives in memory over the simulated disk — the
// deterministic experiment setting. A non-empty dir is shorthand for
// WithDiskBackend(dir): real files, real fsync, durable tables by
// default. Create refuses a location that already holds a database.
func Create(dir string, opts ...Option) (*DB, error) {
	return newDB(dir, true, opts)
}

// Open attaches to an existing database previously initialized with
// Create — typically Open(dir) over a disk directory, or
// Open("", WithBackend(b)) over a shared backend. Individual tables
// are then reloaded with OpenTable. Opening a location that holds no
// database is an error.
func Open(dir string, opts ...Option) (*DB, error) {
	return newDB(dir, false, opts)
}

func newDB(dir string, create bool, opts []Option) (*DB, error) {
	cfg := config{params: sim.DefaultParams(), dir: dir}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	var (
		backend storage.Backend
		onDisk  bool
	)
	switch {
	case cfg.backend != nil:
		backend = cfg.backend
	case cfg.dir != "" && !cfg.mem:
		b, err := storage.NewDiskBackend(cfg.dir)
		if err != nil {
			return nil, err
		}
		backend = b
		onDisk = true
	default:
		backend = storage.NewMemBackend()
	}
	if cfg.durable == nil {
		cfg.table.Durable = onDisk
	} else {
		cfg.table.Durable = *cfg.durable
	}

	disk := sim.NewDisk(cfg.params)
	fs := storage.NewFSOn(disk, backend)
	fs.Sideband(markerFile)
	if create {
		if fs.Exists(markerFile) {
			return nil, fmt.Errorf("upidb: database already exists at %q; use Open", dir)
		}
		f := fs.Create(markerFile)
		if err := f.WriteAt([]byte("upidb 1\n"), 0); err != nil {
			return nil, err
		}
		if cfg.table.Durable {
			if err := f.Sync(); err != nil {
				return nil, err
			}
		}
	} else if !fs.Exists(markerFile) {
		return nil, fmt.Errorf("upidb: no database at %q; use Create", dir)
	}
	// One registry per DB: every table's engine metrics (inherited via
	// the defaults config) and the facade's routing/admission/query
	// metrics report into it.
	reg := obs.NewRegistry()
	cfg.table.Metrics = obs.NewEngineMetrics(reg)
	db := &DB{
		disk:          disk,
		fs:            fs,
		backend:       backend,
		defaults:      cfg.table,
		autoMerge:     cfg.autoMerge,
		defaultShards: cfg.shards,
		reg:           reg,
		met:           newDBMetrics(reg),
	}
	reg.GaugeFunc("upidb_fracture_partitions",
		"Partitions (main UPI + fractures, per shard) across attached tables.",
		db.totalPartitions)
	return db, nil
}

// tableConfig resolves the effective configuration of one table: the
// database defaults overridden by the per-table options. The returned
// shard count is 0 when neither scope set one (callers treat that as
// unsharded, or as accept-what-is-persisted on OpenTable).
func (db *DB) tableConfig(opts []Option) (fracture.Config, *fracture.AutoMergeOptions, int, error) {
	cfg := config{table: db.defaults, autoMerge: db.autoMerge, shards: db.defaultShards, scope: scopeTable}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return fracture.Config{}, nil, 0, cfg.err
	}
	if cfg.durable != nil {
		cfg.table.Durable = *cfg.durable
	}
	return cfg.table, cfg.autoMerge, cfg.shards, nil
}

// spatialConfig resolves the options of one BulkLoadSpatial call.
// Spatial tables inherit nothing from the database defaults — their
// only tunables are the page sizes — so resolution starts from zero
// and rejects every non-spatial option.
func spatialConfig(opts []Option) (cupi.Options, error) {
	cfg := config{scope: scopeSpatial}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return cupi.Options{}, cfg.err
	}
	return cfg.spatial, nil
}
