package upidb

//lint:file-ignore SA1019 the legacy-wrapper test intentionally exercises the deprecated Explain/QueryPlanned.

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestFacadePlanner(t *testing.T) {
	db := New()
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		TableOptions{Cutoff: 0.1}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Without stats, planning fails loudly with the typed sentinel.
	if _, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithExplain()); !errors.Is(err, ErrNoStats) {
		t.Fatalf("Explain without stats: %v", err)
	}
	if _, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner()); !errors.Is(err, ErrNoStats) {
		t.Fatalf("planned Run without stats: %v", err)
	}
	if err := authors.BuildStats(tuples); err != nil {
		t.Fatal(err)
	}
	res, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Info().Explain
	if !strings.Contains(out, "PrimaryScan") || !strings.Contains(out, "FullScan") {
		t.Fatalf("explain output: %q", out)
	}
	if res.Len() != 0 {
		t.Fatalf("explain-only run returned results: %+v", res.Collect())
	}
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Info().Plan == "" {
		t.Fatalf("planned query: %d results via %q", res.Len(), res.Info().Plan)
	}
	// Secondary planning.
	res, err = authors.Run(ctx, PTQ("Country", "Japan", 0.3).WithExplain())
	if err != nil || !strings.Contains(res.Info().Explain, "SecondaryTailored") {
		t.Fatalf("secondary explain: %v %q", err, res.Info().Explain)
	}
	res, err = authors.Run(ctx, PTQ("Country", "Japan", 0.3).WithPlanner())
	if err != nil || res.Len() != 1 {
		t.Fatalf("planned secondary: %v %d", err, res.Len())
	}
	// Per-query parallelism rides through the planner path.
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner().WithParallelism(1))
	if err != nil || res.Len() != 2 {
		t.Fatalf("planned serial query: %v %d", err, res.Len())
	}
	// Explain is PTQ-only: a top-k explain request errors instead of
	// silently executing.
	if _, err := authors.Run(ctx, TopKQuery("MIT", 2).WithExplain()); err == nil {
		t.Fatal("top-k WithExplain accepted")
	}
	// Unknown attribute fails with the typed sentinel.
	if _, err := authors.Run(ctx, PTQ("Nope", "x", 0.1).WithExplain()); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("unknown attribute: %v", err)
	}
	// BuildStats with explicit attrs subset: a valid attribute without
	// a histogram is ErrNoStats, not ErrUnknownAttr.
	if err := authors.BuildStats(tuples, "Institution"); err != nil {
		t.Fatal(err)
	}
	if _, err := authors.Run(ctx, PTQ("Country", "Japan", 0.3).WithExplain()); !errors.Is(err, ErrNoStats) {
		t.Fatalf("country stats should be absent after subset rebuild: %v", err)
	}
}

// TestFacadePlannerLegacyWrappers pins the deprecated Explain and
// QueryPlanned wrappers to the Run path they delegate to.
func TestFacadePlannerLegacyWrappers(t *testing.T) {
	db := New()
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		TableOptions{Cutoff: 0.1}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := authors.Explain("Institution", "MIT", 0.1); !errors.Is(err, ErrNoStats) {
		t.Fatalf("Explain without stats: %v", err)
	}
	if _, _, err := authors.QueryPlanned("Institution", "MIT", 0.1); !errors.Is(err, ErrNoStats) {
		t.Fatalf("QueryPlanned without stats: %v", err)
	}
	if err := authors.BuildStats(tuples); err != nil {
		t.Fatal(err)
	}
	out, err := authors.Explain("Institution", "MIT", 0.1)
	if err != nil || !strings.Contains(out, "PrimaryScan") {
		t.Fatalf("legacy explain: %v %q", err, out)
	}
	rs, plan, err := authors.QueryPlanned("Institution", "MIT", 0.1)
	if err != nil || len(rs) != 2 || plan == "" {
		t.Fatalf("legacy planned query: %v %d via %q", err, len(rs), plan)
	}
}
