package upidb

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestFacadePlannerByDefault: a bulk load seeds the statistics catalog,
// so Run with no options routes PTQs through the planner and reports
// it; WithHeuristic restores the fixed routing with identical results.
func TestFacadePlannerByDefault(t *testing.T) {
	db := mustCreate(t)
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		tuples, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	si := authors.StatsInfo()
	if !si.Seeded || si.Staleness != 0 || si.TrackedTuples != int64(len(tuples)) {
		t.Fatalf("bulk load should seed the catalog: %+v", si)
	}
	res, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Info().PlanSource != PlanSourceStats || res.Info().Plan == "" {
		t.Fatalf("default Run should be planner-routed: %d results, source %q plan %q",
			res.Len(), res.Info().PlanSource, res.Info().Plan)
	}
	// The heuristic force-flag bypasses the catalog, same results.
	heur, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if heur.Info().PlanSource != PlanSourceHeuristic || heur.Len() != res.Len() {
		t.Fatalf("heuristic run: source %q, %d vs %d results",
			heur.Info().PlanSource, heur.Len(), res.Len())
	}
	// Secondary attribute: planner-routed by default too.
	sec, err := authors.Run(ctx, PTQ("Country", "Japan", 0.3))
	if err != nil || sec.Len() != 1 || sec.Info().PlanSource != PlanSourceStats {
		t.Fatalf("secondary planned: %v %d %q", err, sec.Len(), sec.Info().PlanSource)
	}
	// Forced planner reports its own source on a not-yet-costed shape.
	forced, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.2).WithPlanner())
	if err != nil || forced.Info().PlanSource != PlanSourceForced {
		t.Fatalf("forced planner: %v %q", err, forced.Info().PlanSource)
	}
	// Repeating a shape the planner already costed serves the
	// generation-guarded cached plan — and says so.
	again, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil || again.Info().PlanSource != PlanSourceCached || again.Len() != res.Len() {
		t.Fatalf("cached repeat: %v %q %d results", err, again.Info().PlanSource, again.Len())
	}
	// Per-query parallelism rides through the planner path.
	serial, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner().WithParallelism(1))
	if err != nil || serial.Len() != 2 {
		t.Fatalf("planned serial query: %v %d", err, serial.Len())
	}
	// Top-k ignores the planner and routes heuristically.
	topk, err := authors.Run(ctx, TopKQuery("MIT", 2))
	if err != nil || topk.Info().PlanSource != PlanSourceHeuristic {
		t.Fatalf("topk source: %v %q", err, topk.Info().PlanSource)
	}
}

func TestFacadeExplain(t *testing.T) {
	db := mustCreate(t)
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		tuples, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Info().Explain
	if !strings.Contains(out, "PrimaryScan") || !strings.Contains(out, "FullScan") {
		t.Fatalf("explain output: %q", out)
	}
	// Explain reports the routing Run would use: fresh stats here.
	if !strings.Contains(out, "fresh stats") {
		t.Fatalf("explain should name fresh-stats routing: %q", out)
	}
	if res.Info().PlanSource != PlanSourceStats {
		t.Fatalf("explain source: %q", res.Info().PlanSource)
	}
	if res.Len() != 0 {
		t.Fatalf("explain-only run returned results: %+v", res.Collect())
	}
	// Forced explain names the force flag (fresh shape: a repeat of the
	// costed one would be served — and labeled — from the plan cache).
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.25).WithPlanner().WithExplain())
	if err != nil || !strings.Contains(res.Info().Explain, "forced by WithPlanner") {
		t.Fatalf("forced explain: %v %q", err, res.Info().Explain)
	}
	// Explaining an already-costed shape reports the cached provenance.
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithExplain())
	if err != nil || !strings.Contains(res.Info().Explain, "cached plan") ||
		res.Info().PlanSource != PlanSourceCached {
		t.Fatalf("cached explain: %v %q %q", err, res.Info().PlanSource, res.Info().Explain)
	}
	// A forced heuristic is reported as the user's choice, not as a
	// stats failure.
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithHeuristic().WithExplain())
	if err != nil || !strings.Contains(res.Info().Explain, "forced by WithHeuristic") {
		t.Fatalf("heuristic explain: %v %q", err, res.Info().Explain)
	}
	// Secondary explain includes the tailored plan.
	res, err = authors.Run(ctx, PTQ("Country", "Japan", 0.3).WithExplain())
	if err != nil || !strings.Contains(res.Info().Explain, "SecondaryTailored") {
		t.Fatalf("secondary explain: %v %q", err, res.Info().Explain)
	}
	// Explain is PTQ-only: a top-k explain request errors instead of
	// silently executing.
	if _, err := authors.Run(ctx, TopKQuery("MIT", 2).WithExplain()); err == nil {
		t.Fatal("top-k WithExplain accepted")
	}
	// Unknown attribute fails with the typed sentinel.
	if _, err := authors.Run(ctx, PTQ("Nope", "x", 0.1).WithExplain()); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("unknown attribute: %v", err)
	}
	// A stale catalog explains the heuristic fallback. Deleting 2 of 3
	// on-disk tuples pushes staleness to 40% > 10%.
	if err := authors.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := authors.Delete(2); err != nil {
		t.Fatal(err)
	}
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithExplain())
	if err != nil || !strings.Contains(res.Info().Explain, "heuristic fallback") {
		t.Fatalf("stale explain: %v %q", err, res.Info().Explain)
	}
	if res.Info().PlanSource != PlanSourceHeuristic {
		t.Fatalf("stale explain source: %q", res.Info().PlanSource)
	}
}

// TestFacadeStalenessFallback: unabsorbed deletes push the catalog
// past its threshold, Run degrades to heuristic routing, and a merge
// re-derivation restores planner routing.
func TestFacadeStalenessFallback(t *testing.T) {
	db := mustCreate(t)
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		tuples, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := authors.Delete(1); err != nil { // on-disk delete: unabsorbable
		t.Fatal(err)
	}
	si := authors.StatsInfo()
	if si.Unabsorbed != 1 || si.Staleness <= si.Threshold {
		t.Fatalf("1 of 3 deleted should exceed the 10%% threshold: %+v", si)
	}
	res, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Info().PlanSource != PlanSourceHeuristic {
		t.Fatalf("stale catalog should fall back to heuristic: %q", res.Info().PlanSource)
	}
	if res.Len() != 1 { // Bob only; Alice (ID 1) deleted
		t.Fatalf("results under fallback: %+v", res.Collect())
	}
	// Forced planner still works on the stale (but seeded) catalog.
	forced, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner())
	if err != nil || forced.Len() != 1 || forced.Info().PlanSource != PlanSourceForced {
		t.Fatalf("forced on stale: %v %d %q", err, forced.Len(), forced.Info().PlanSource)
	}
	// Merge re-derives the histograms from its own scan: staleness
	// drops to zero and planner routing resumes.
	if err := authors.Merge(); err != nil {
		t.Fatal(err)
	}
	si = authors.StatsInfo()
	if si.Staleness != 0 || si.Rebuilds != 1 || si.TrackedTuples != 2 {
		t.Fatalf("post-merge catalog: %+v", si)
	}
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil || res.Info().PlanSource != PlanSourceStats {
		t.Fatalf("post-merge routing: %v %q", err, res.Info().PlanSource)
	}
}

// TestFacadeUnseededCatalog: a reopened table has unknown content — no
// automatic planning, ErrNoStats on forced planning — until BuildStats
// seeds it or a merge re-derives it.
func TestFacadeUnseededCatalog(t *testing.T) {
	db := mustCreate(t)
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"}, tuples, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := authors.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := db.OpenTable("authors", "Institution", []string{"Country"}, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if si := re.StatsInfo(); si.Seeded {
		t.Fatalf("reopened table should start unseeded: %+v", si)
	}
	// Forced planning fails loudly with the typed sentinel.
	if _, err := re.Run(ctx, PTQ("Institution", "MIT", 0.1).WithExplain()); !errors.Is(err, ErrNoStats) {
		t.Fatalf("Explain without stats: %v", err)
	}
	if _, err := re.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner()); !errors.Is(err, ErrNoStats) {
		t.Fatalf("planned Run without stats: %v", err)
	}
	// Default Run degrades to heuristic routing, with correct results.
	res, err := re.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil || res.Len() != 2 || res.Info().PlanSource != PlanSourceHeuristic {
		t.Fatalf("unseeded default Run: %v %d %q", err, res.Len(), res.Info().PlanSource)
	}
	// BuildStats with an explicit attrs subset seeds only that subset:
	// a valid attribute without a histogram is ErrNoStats, not
	// ErrUnknownAttr, and auto-routing covers only the seeded one.
	if err := re.BuildStats(tuples, "Institution"); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run(ctx, PTQ("Country", "Japan", 0.3).WithExplain()); !errors.Is(err, ErrNoStats) {
		t.Fatalf("country stats should be absent after subset seed: %v", err)
	}
	res, err = re.Run(ctx, PTQ("Country", "Japan", 0.3))
	if err != nil || res.Len() != 1 || res.Info().PlanSource != PlanSourceHeuristic {
		t.Fatalf("uncovered attr should fall back: %v %d %q", err, res.Len(), res.Info().PlanSource)
	}
	res, err = re.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil || res.Len() != 2 || res.Info().PlanSource != PlanSourceStats {
		t.Fatalf("seeded attr should plan: %v %d %q", err, res.Len(), res.Info().PlanSource)
	}
	// A merge re-derives every attribute, seeding the rest.
	if err := re.Merge(); err != nil {
		t.Fatal(err)
	}
	res, err = re.Run(ctx, PTQ("Country", "Japan", 0.3))
	if err != nil || res.Len() != 1 || res.Info().PlanSource != PlanSourceStats {
		t.Fatalf("post-merge country routing: %v %d %q", err, res.Len(), res.Info().PlanSource)
	}
}

// TestFacadeAutoRoutingDisabled: a negative StatsStaleness threshold
// turns automatic planner routing off; WithPlanner still works.
func TestFacadeAutoRoutingDisabled(t *testing.T) {
	db := mustCreate(t)
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		tuples, WithCutoff(0.1), WithStatsStaleness(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := authors.Run(ctx, PTQ("Institution", "MIT", 0.1))
	if err != nil || res.Info().PlanSource != PlanSourceHeuristic {
		t.Fatalf("auto routing should be disabled: %v %q", err, res.Info().PlanSource)
	}
	res, err = authors.Run(ctx, PTQ("Institution", "MIT", 0.1).WithPlanner())
	if err != nil || res.Info().PlanSource != PlanSourceForced || res.Len() != 2 {
		t.Fatalf("forced planner with auto off: %v %q %d", err, res.Info().PlanSource, res.Len())
	}
}
