package upidb

import (
	"strings"
	"testing"
)

func TestFacadePlanner(t *testing.T) {
	db := New()
	tuples := exampleTuples(t)
	authors, err := db.BulkLoadTable("authors", "Institution", []string{"Country"},
		TableOptions{Cutoff: 0.1}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	// Without stats, planning fails loudly.
	if _, err := authors.Explain("Institution", "MIT", 0.1); err == nil {
		t.Fatal("Explain without stats accepted")
	}
	if _, _, err := authors.QueryPlanned("Institution", "MIT", 0.1); err == nil {
		t.Fatal("QueryPlanned without stats accepted")
	}
	if err := authors.BuildStats(tuples); err != nil {
		t.Fatal(err)
	}
	out, err := authors.Explain("Institution", "MIT", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PrimaryScan") || !strings.Contains(out, "FullScan") {
		t.Fatalf("explain output: %q", out)
	}
	rs, plan, err := authors.QueryPlanned("Institution", "MIT", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("planned query: %d results via %s", len(rs), plan)
	}
	// Secondary planning.
	out, err = authors.Explain("Country", "Japan", 0.3)
	if err != nil || !strings.Contains(out, "SecondaryTailored") {
		t.Fatalf("secondary explain: %v %q", err, out)
	}
	rs, _, err = authors.QueryPlanned("Country", "Japan", 0.3)
	if err != nil || len(rs) != 1 {
		t.Fatalf("planned secondary: %v %d", err, len(rs))
	}
	// Unknown attribute fails.
	if _, err := authors.Explain("Nope", "x", 0.1); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	// BuildStats with explicit attrs subset.
	if err := authors.BuildStats(tuples, "Institution"); err != nil {
		t.Fatal(err)
	}
	if _, err := authors.Explain("Country", "Japan", 0.3); err == nil {
		t.Fatal("country stats should be absent after subset rebuild")
	}
}
