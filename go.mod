module upidb

go 1.24
