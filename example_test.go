package upidb_test

import (
	"context"
	"fmt"
	"log"

	"upidb"
)

// Example reproduces the paper's Query 1 on the running example: the
// confidence of an answer is existence × P(value) under possible-world
// semantics. Queries are descriptors executed by Run under a context;
// results stream through a range-over-func iterator.
func Example() {
	db, err := upidb.Create("")
	if err != nil {
		log.Fatal(err)
	}
	authors, err := db.CreateTable("authors", "Institution", nil,
		upidb.WithCutoff(0.10))
	if err != nil {
		log.Fatal(err)
	}

	alice, _ := upidb.NewDiscrete([]upidb.Alternative{
		{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2},
	})
	bob, _ := upidb.NewDiscrete([]upidb.Alternative{
		{Value: "MIT", Prob: 0.95}, {Value: "UCB", Prob: 0.05},
	})
	authors.Insert(&upidb.Tuple{
		ID: 1, Existence: 0.9,
		Det: []upidb.DetField{{Name: "Name", Value: "Alice"}},
		Unc: []upidb.UncField{{Name: "Institution", Dist: alice}},
	})
	authors.Insert(&upidb.Tuple{
		ID: 2, Existence: 1.0,
		Det: []upidb.DetField{{Name: "Name", Value: "Bob"}},
		Unc: []upidb.UncField{{Name: "Institution", Dist: bob}},
	})

	// PTQ on the primary attribute ("" is shorthand for it).
	res, err := authors.Run(context.Background(), upidb.PTQ("", "MIT", 0.10))
	if err != nil {
		log.Fatal(err)
	}
	for r, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		name, _ := r.Tuple.DetValue("Name")
		fmt.Printf("%s: %.0f%%\n", name, r.Confidence*100)
	}
	// Output:
	// Bob: 95%
	// Alice: 18%
}

// ExampleTable_Run finds the k most likely tuples for one value of
// the clustered attribute; the UPI's confidence-descending order makes
// this a bounded scan. Per-query options chain onto the descriptor.
func ExampleTable_Run() {
	db, _ := upidb.Create("")
	authors, _ := db.CreateTable("authors", "Institution", nil)
	for i, p := range []float64{0.3, 0.9, 0.6} {
		d, _ := upidb.NewDiscrete([]upidb.Alternative{{Value: "MIT", Prob: p}})
		authors.Insert(&upidb.Tuple{ID: uint64(i + 1), Existence: 1, Unc: []upidb.UncField{
			{Name: "Institution", Dist: d},
		}})
	}
	q := upidb.TopKQuery("MIT", 2).WithParallelism(1).WithStats()
	res, _ := authors.Run(context.Background(), q)
	for _, r := range res.Collect() {
		fmt.Printf("tuple %d: %.1f\n", r.Tuple.ID, r.Confidence)
	}
	// Output:
	// tuple 2: 0.9
	// tuple 3: 0.6
}

// ExampleTable_Merge shows the fractured-UPI lifecycle: buffered
// writes, explicit flushes into fractures, and a merge that folds all
// fractures back into one main UPI.
func ExampleTable_Merge() {
	db, _ := upidb.Create("")
	t, _ := db.CreateTable("t", "X", nil)
	d, _ := upidb.NewDiscrete([]upidb.Alternative{{Value: "a", Prob: 1}})
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 10; i++ {
			t.Insert(&upidb.Tuple{ID: uint64(batch*10 + i + 1), Existence: 1,
				Unc: []upidb.UncField{{Name: "X", Dist: d}}})
		}
		t.Flush()
	}
	fmt.Println("fractures before merge:", t.NumFractures())
	t.Merge()
	fmt.Println("fractures after merge:", t.NumFractures())
	res, _ := t.Run(context.Background(), upidb.PTQ("", "a", 0.5))
	fmt.Println("rows:", res.Len())
	// Output:
	// fractures before merge: 3
	// fractures after merge: 0
	// rows: 30
}
