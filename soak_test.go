package upidb

// Randomized soak test: a long random sequence of inserts, deletes,
// flushes, merges and queries on the facade, validated operation by
// operation against a trivially-correct in-memory reference
// implementation of PTQ semantics. This is the end-to-end correctness
// net over the whole stack (facade → fracture → upi → btree → pager →
// simulated disk).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refTable is the oracle: a map of live tuples queried by brute force.
type refTable struct {
	live map[uint64]*Tuple
}

func (r *refTable) query(attr, value string, qt float64) []uint64 {
	type hit struct {
		id   uint64
		conf float64
	}
	var hits []hit
	for id, tup := range r.live {
		// conf > 0: a PTQ matches tuples that have the value among
		// their alternatives; zero confidence means no alternative.
		if conf := tup.Confidence(attr, value); conf > 0 && conf >= qt {
			hits = append(hits, hit{id, conf})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].conf != hits[j].conf {
			return hits[i].conf > hits[j].conf
		}
		return hits[i].id < hits[j].id
	})
	ids := make([]uint64, len(hits))
	for i, h := range hits {
		ids[i] = h.id
	}
	return ids
}

func TestSoakAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(99))
	db := mustCreate(t)
	tab, err := db.CreateTable("soak", "X", []string{"Y"}, WithCutoff(0.15))
	if err != nil {
		t.Fatal(err)
	}
	ref := &refTable{live: make(map[uint64]*Tuple)}
	values := make([]string, 12)
	for i := range values {
		values[i] = fmt.Sprintf("v%02d", i)
	}

	newTuple := func(id uint64) *Tuple {
		v1 := values[rng.Intn(len(values))]
		v2 := values[rng.Intn(len(values))]
		p := 0.25 + rng.Float64()*0.7
		alts := []Alternative{{Value: v1, Prob: p}}
		if v2 != v1 {
			alts = append(alts, Alternative{Value: v2, Prob: (1 - p) * 0.9})
		}
		x, err := NewDiscrete(alts)
		if err != nil {
			t.Fatal(err)
		}
		y, err := NewDiscrete([]Alternative{{Value: "y" + v1, Prob: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return &Tuple{
			ID: id, Existence: 0.5 + rng.Float64()/2,
			Unc: []UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}},
		}
	}

	check := func(op int) {
		t.Helper()
		attr := "X"
		value := values[rng.Intn(len(values))]
		if rng.Intn(3) == 0 {
			attr = "Y"
			value = "y" + value
		}
		qt := []float64{0.05, 0.2, 0.5, 0.8}[rng.Intn(4)]
		want := ref.query(attr, value, qt)
		q := PTQ(attr, value, qt)
		if attr == "X" {
			q = PTQ("", value, qt)
		}
		res, err := tab.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("op %d: query %s=%s@%v: %v", op, attr, value, qt, err)
		}
		got := res.Collect()
		if len(got) != len(want) {
			t.Fatalf("op %d: query %s=%s@%v: got %d want %d", op, attr, value, qt, len(got), len(want))
		}
		for i := range got {
			if got[i].Tuple.ID != want[i] {
				t.Fatalf("op %d: result %d: got id %d want %d", op, i, got[i].Tuple.ID, want[i])
			}
			wantConf := ref.live[want[i]].Confidence(attr, value)
			if math.Abs(got[i].Confidence-wantConf) > 1e-9 {
				t.Fatalf("op %d: result %d: conf %v want %v", op, i, got[i].Confidence, wantConf)
			}
		}
	}

	nextID := uint64(1)
	const ops = 3000
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(100); {
		case r < 55: // insert
			tup := newTuple(nextID)
			nextID++
			if err := tab.Insert(tup); err != nil {
				t.Fatal(err)
			}
			ref.live[tup.ID] = tup
		case r < 70: // delete a random live tuple
			for id := range ref.live {
				if err := tab.Delete(id); err != nil {
					t.Fatal(err)
				}
				delete(ref.live, id)
				break
			}
		case r < 80: // flush
			if err := tab.Flush(); err != nil {
				t.Fatal(err)
			}
		case r < 83: // merge
			if err := tab.Merge(); err != nil {
				t.Fatal(err)
			}
		default: // query
			check(op)
		}
	}
	// Final exhaustive sweep over all values and thresholds.
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		for _, qt := range []float64{0, 0.1, 0.3, 0.6, 0.9} {
			want := ref.query("X", v, qt)
			res, err := tab.Run(context.Background(), PTQ("", v, qt))
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != len(want) {
				t.Fatalf("final sweep %s@%v: got %d want %d", v, qt, res.Len(), len(want))
			}
		}
	}
}
