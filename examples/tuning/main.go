// Example tuning: the paper's Section 6 workflow for a database
// administrator — build histograms, estimate table size and query cost
// for candidate cutoff thresholds, pick C under a storage budget and a
// latency target, and schedule fracture merges with the cost model.
package main

import (
	"fmt"
	"log"
	"time"

	"upidb/internal/costmodel"
	"upidb/internal/dataset"
	"upidb/internal/histogram"
	"upidb/internal/sim"
	"upidb/internal/storage"
)

func main() {
	cfg := dataset.DefaultDBLPConfig().Scaled(0.05)
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: collect statistics (attribute-value + probability
	// histograms, Section 6.1).
	hist, err := histogram.Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram: %d tuples, %d entries, %d distinct institutions\n",
		hist.TotalTuples(), hist.TotalEntries(), hist.DistinctValues())

	// Step 2: the workload. Suppose 70%% of queries use QT=0.3 and
	// 30%% use QT=0.05 on a popular institution.
	workload := []struct {
		qt     float64
		weight float64
	}{
		{qt: 0.30, weight: 0.7},
		{qt: 0.05, weight: 0.3},
	}
	value := dataset.MITInstitution

	// Step 3: per-candidate table size and weighted average query
	// cost from the Section 6.3 cost model.
	candidates := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4}
	sizes := make([]float64, len(candidates))
	costs := make([]time.Duration, len(candidates))
	fmt.Println("\n    C     size[MB]   avg query cost")
	for i, c := range candidates {
		sizes[i] = hist.EstimateTableBytes(c)
		params := costmodel.Params{
			Disk:       sim.DefaultParams(),
			Height:     4,
			TableBytes: int64(sizes[i]),
			Leaves:     int64(sizes[i] / float64(storage.DefaultPageSize) / 0.9),
		}
		var avg time.Duration
		for _, w := range workload {
			scanQT := w.qt
			if c > scanQT {
				scanQT = c
			}
			sel := hist.EstimateEntries(value, scanQT) / hist.EstimateHeapEntriesTotal(c)
			var cost time.Duration
			if w.qt < c {
				ptrs := hist.EstimateCutoffPointers(value, w.qt, c)
				cost = params.CostCutoff(sel, ptrs)
			} else {
				cost = params.CostSingle(sel)
			}
			avg += time.Duration(float64(cost) * w.weight)
		}
		costs[i] = avg
		fmt.Printf("  %.2f   %8.2f   %v\n", c, sizes[i]/(1<<20), avg.Round(time.Millisecond))
	}

	// Step 4: pick the largest C that fits a 2x-raw-size storage
	// budget and keeps the weighted query cost under 1 second.
	rawBytes := sizes[len(sizes)-1] // the most aggressive cutoff ≈ raw size
	budget := 2 * rawBytes
	idx := costmodel.PickCutoff(sizes, costs, budget, time.Second)
	if idx < 0 {
		fmt.Println("\nno cutoff satisfies the budget; relax one constraint")
		return
	}
	fmt.Printf("\nchosen cutoff C=%.2f (size %.2f MB within budget %.2f MB, avg cost %v)\n",
		candidates[idx], sizes[idx]/(1<<20), budget/(1<<20), costs[idx].Round(time.Millisecond))

	// Step 5: merge scheduling. Estimate how many fractures keep the
	// 95th-percentile query under 2 seconds, and what a merge costs.
	params := costmodel.Params{
		Disk:       sim.DefaultParams(),
		Height:     4,
		TableBytes: int64(sizes[idx]),
		Leaves:     int64(sizes[idx] / float64(storage.DefaultPageSize) / 0.9),
	}
	sel := hist.EstimateSelectivity(value, 0.3)
	fmt.Println("\nfractures vs estimated query cost:")
	maxFrac := 0
	for n := 0; n <= 20; n += 5 {
		params.Fractures = n
		cost := params.CostFractured(sel)
		fmt.Printf("  Nfrac=%2d -> %v\n", n, cost.Round(time.Millisecond))
		if cost <= 2*time.Second {
			maxFrac = n
		}
	}
	fmt.Printf("merge whenever fractures exceed %d; each merge costs about %v\n",
		maxFrac, params.CostMerge().Round(time.Millisecond))
}
