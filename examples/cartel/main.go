// Example cartel: continuous UPI over uncertain GPS observations —
// the paper's Queries 4 and 5 through the unified Run(ctx, Query)
// spatial API (planner routing, EXPLAIN, streaming, per-query stats).
package main

import (
	"context"
	"fmt"
	"log"

	"upidb"
	"upidb/internal/dataset"
)

func main() {
	cfg := dataset.DefaultCartelConfig().Scaled(0.05)
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d car observations on %d road segments\n",
		len(c.Observations), len(c.Segments))

	ctx := context.Background()
	db, err := upidb.Create("")
	if err != nil {
		log.Fatal(err)
	}
	cars, err := db.BulkLoadSpatial("cars", c.Observations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous UPI size: %.1f MB (spatial stats: %+v)\n",
		float64(cars.SizeBytes())/(1<<20), cars.StatsInfo())

	// Query 4: all cars within 400 m of downtown with appearance
	// probability >= 0.5 — planner-routed, with per-query modeled cost.
	q4 := upidb.Circle(upidb.Point{X: 0, Y: 0}, 400, 0.5)
	if err := cars.DropCaches(); err != nil {
		log.Fatal(err)
	}
	res, err := cars.Run(ctx, q4.WithStats())
	if err != nil {
		log.Fatal(err)
	}
	rs := res.Collect()
	info := res.Info()
	fmt.Printf("\nQuery 4 (within 400m of downtown, threshold 0.5): %d cars\n", len(rs))
	fmt.Printf("  routed by %q to plan %s; %d candidates, %d fetched, modeled cost %v\n",
		info.PlanSource, info.Plan, info.Candidates, info.HeapEntries, info.ModeledTime)
	for _, r := range rs[:min(3, len(rs))] {
		fmt.Printf("  car %d at (%.0f, %.0f) with probability %.2f, speed %.1f m/s\n",
			r.Obs.ID, r.Obs.Loc.Center.X, r.Obs.Loc.Center.Y, r.Confidence, r.Obs.Speed)
	}

	// The same query as an EXPLAIN: the costed plans, nothing executed.
	ex, err := cars.Run(ctx, q4.WithExplain())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEXPLAIN Query 4:\n%s", ex.Info().Explain)

	// Query 5: cars on the busiest road segment, streamed on the
	// segment-index path (pinned with WithHeuristic) — results arrive
	// in confidence order while the index scan is still running.
	counts := map[string]int{}
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	seg, best := "", 0
	for s, n := range counts {
		if n > best {
			seg, best = s, n
		}
	}
	if err := cars.DropCaches(); err != nil {
		log.Fatal(err)
	}
	res, err = cars.Run(ctx, upidb.Segment(seg, 0.3).WithHeuristic())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 5 (Segment=%s, QT=0.3), streaming in confidence order:\n", seg)
	n := 0
	for r, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		if n < 3 {
			fmt.Printf("  car %d on %s with probability %.2f\n", r.Obs.ID, seg, r.Confidence)
		}
		n++
	}
	fmt.Printf("  ... %d cars total\n", n)

	// Live insert: a new observation is immediately queryable (and its
	// statistics delta is absorbed, so routing stays planner-fresh).
	segDist, err := upidb.NewDiscrete([]upidb.Alternative{{Value: seg, Prob: 1.0}})
	if err != nil {
		log.Fatal(err)
	}
	err = cars.Insert(&upidb.Observation{
		ID:      uint64(len(c.Observations) + 1),
		Loc:     upidb.ConstrainedGaussian{Center: upidb.Point{X: 5, Y: 5}, Sigma: 20, Bound: 100},
		Segment: segDist,
		Speed:   8.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err = cars.Run(ctx, upidb.Circle(upidb.Point{X: 0, Y: 0}, 200, 0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter live insert, %d cars within 200m of downtown (source %q)\n",
		res.Len(), res.Info().PlanSource)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
