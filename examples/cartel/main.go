// Example cartel: continuous UPI over uncertain GPS observations —
// the paper's Queries 4 and 5 on the public spatial API.
package main

import (
	"context"
	"fmt"
	"log"

	"upidb"
	"upidb/internal/dataset"
)

func main() {
	cfg := dataset.DefaultCartelConfig().Scaled(0.05)
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d car observations on %d road segments\n",
		len(c.Observations), len(c.Segments))

	ctx := context.Background()
	db := upidb.New()
	cars, err := db.BulkLoadSpatial("cars", c.Observations, upidb.SpatialOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous UPI size: %.1f MB\n", float64(cars.SizeBytes())/(1<<20))

	// Query 4: all cars within 400 m of downtown with appearance
	// probability >= 0.5.
	if err := cars.DropCaches(); err != nil {
		log.Fatal(err)
	}
	before := db.DiskStats()
	rs, err := cars.RunCircle(ctx, upidb.Point{X: 0, Y: 0}, 400, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cost := db.DiskStats().Sub(before)
	fmt.Printf("\nQuery 4 (within 400m of downtown, threshold 0.5): %d cars, modeled cost %v\n",
		len(rs), cost.Elapsed)
	for _, r := range rs[:min(3, len(rs))] {
		fmt.Printf("  car %d at (%.0f, %.0f) with probability %.2f, speed %.1f m/s\n",
			r.Obs.ID, r.Obs.Loc.Center.X, r.Obs.Loc.Center.Y, r.Confidence, r.Obs.Speed)
	}

	// Query 5: cars on the busiest road segment.
	counts := map[string]int{}
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	seg, best := "", 0
	for s, n := range counts {
		if n > best {
			seg, best = s, n
		}
	}
	if err := cars.DropCaches(); err != nil {
		log.Fatal(err)
	}
	before = db.DiskStats()
	rs, err = cars.RunSegment(ctx, seg, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	cost = db.DiskStats().Sub(before)
	fmt.Printf("\nQuery 5 (Segment=%s, QT=0.3): %d cars, modeled cost %v\n", seg, len(rs), cost.Elapsed)

	// Live insert: a new observation is immediately queryable.
	segDist, err := upidb.NewDiscrete([]upidb.Alternative{{Value: seg, Prob: 1.0}})
	if err != nil {
		log.Fatal(err)
	}
	err = cars.Insert(&upidb.Observation{
		ID:      uint64(len(c.Observations) + 1),
		Loc:     upidb.ConstrainedGaussian{Center: upidb.Point{X: 5, Y: 5}, Sigma: 20, Bound: 100},
		Segment: segDist,
		Speed:   8.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	rs, err = cars.RunCircle(ctx, upidb.Point{X: 0, Y: 0}, 200, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter live insert, %d cars within 200m of downtown\n", len(rs))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
