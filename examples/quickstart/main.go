// Quickstart: create an uncertain table, insert tuples with uncertain
// attributes, and run a probabilistic threshold query — the minimal
// end-to-end use of the upidb public API.
package main

import (
	"context"
	"fmt"
	"log"

	"upidb"
)

func main() {
	// Create("") is the in-memory database over the simulated disk:
	// hermetic, deterministic modeled I/O costs. Create(dir) instead
	// stores real files under dir with WAL durability.
	db, err := upidb.Create("")
	if err != nil {
		log.Fatal(err)
	}

	// A UPI clusters the heap file on an uncertain attribute; here
	// Institution, with a secondary index on Country and a 10% cutoff
	// threshold (alternatives below 10% confidence go to the cutoff
	// index instead of being duplicated in the heap). Queries fan out
	// over the main UPI and all fractures with up to GOMAXPROCS
	// workers by default; modeled costs are the same at any width.
	authors, err := db.CreateTable("authors", "Institution", []string{"Country"},
		upidb.WithCutoff(0.10))
	if err != nil {
		log.Fatal(err)
	}

	inst, err := upidb.NewDiscrete([]upidb.Alternative{
		{Value: "Brown", Prob: 0.8},
		{Value: "MIT", Prob: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	country, err := upidb.NewDiscrete([]upidb.Alternative{{Value: "US", Prob: 1.0}})
	if err != nil {
		log.Fatal(err)
	}
	// Alice exists with probability 0.9 and works for Brown (80%) or
	// MIT (20%) — the paper's running example.
	err = authors.Insert(&upidb.Tuple{
		ID:        1,
		Existence: 0.9,
		Det:       []upidb.DetField{{Name: "Name", Value: "Alice"}},
		Unc: []upidb.UncField{
			{Name: "Institution", Dist: inst},
			{Name: "Country", Dist: country},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Probabilistic threshold query: everyone at MIT with confidence
	// >= 0.1. Alice qualifies with 0.9 × 0.2 = 0.18. A Query is a
	// descriptor executed by Run under a context — pass one with a
	// deadline to bound the query; here Background is fine. Results
	// stream through a range-over-func iterator.
	res, err := authors.Run(context.Background(), upidb.PTQ("", "MIT", 0.1))
	if err != nil {
		log.Fatal(err)
	}
	for r, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		name, _ := r.Tuple.DetValue("Name")
		fmt.Printf("%s is at MIT with confidence %.0f%%\n", name, r.Confidence*100)
	}
}
