// Example dblp: analytic queries over the uncertain-DBLP-like dataset,
// reproducing the paper's motivating workload (Queries 1-3) on the
// public API and comparing the modeled cost of primary-index access
// against what a pointer-chasing secondary index would pay.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"upidb"
	"upidb/internal/dataset"
)

func main() {
	// A 1/50-scale dataset keeps this example instant; pass through
	// internal/dataset only to synthesize data — all database work
	// happens via the public upidb API.
	cfg := dataset.DefaultDBLPConfig().Scaled(0.02)
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d authors, %d publications\n", len(d.Authors), len(d.Publications))

	db, err := upidb.Create("")
	if err != nil {
		log.Fatal(err)
	}
	authors, err := db.BulkLoadTable("authors", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, d.Authors, upidb.WithCutoff(0.10))
	if err != nil {
		log.Fatal(err)
	}
	pubs, err := db.BulkLoadTable("pubs", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, d.Publications, upidb.WithCutoff(0.10))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	// Query 1: authors at MIT with confidence >= 0.3.
	if err := authors.DropCaches(); err != nil {
		log.Fatal(err)
	}
	res, err := authors.Run(ctx, upidb.PTQ("", dataset.MITInstitution, 0.3).WithStats())
	if err != nil {
		log.Fatal(err)
	}
	rs, info := res.Collect(), res.Info()
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 1 (Institution=MIT, QT=0.3): %d authors, cost %v\n", len(rs), info.ModeledTime)
	for i, r := range rs[:min(3, len(rs))] {
		name, _ := r.Tuple.DetValue(dataset.DetName)
		fmt.Printf("  %d. %s (%.0f%%)\n", i+1, name, r.Confidence*100)
	}

	// Query 2: journal breakdown of MIT publications.
	if err := pubs.DropCaches(); err != nil {
		log.Fatal(err)
	}
	res, err = pubs.Run(ctx, upidb.PTQ("", dataset.MITInstitution, 0.3).WithStats())
	if err != nil {
		log.Fatal(err)
	}
	rs, info = res.Collect(), res.Info()
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	byJournal := map[string]int{}
	for _, r := range rs {
		if j, ok := r.Tuple.DetValue(dataset.DetJournal); ok {
			byJournal[j]++
		}
	}
	fmt.Printf("\nQuery 2 (MIT publications GROUP BY journal, QT=0.3): %d pubs in %d journals, cost %v\n",
		len(rs), len(byJournal), info.ModeledTime)
	type jc struct {
		j string
		n int
	}
	var tops []jc
	for j, n := range byJournal {
		tops = append(tops, jc{j, n})
	}
	sort.Slice(tops, func(i, k int) bool { return tops[i].n > tops[k].n })
	for _, t := range tops[:min(3, len(tops))] {
		fmt.Printf("  %-12s %d\n", t.j, t.n)
	}

	// Query 3: publications from Japan via the Country secondary
	// index — tailored access exploits the Institution clustering.
	if err := pubs.DropCaches(); err != nil {
		log.Fatal(err)
	}
	res, err = pubs.Run(ctx, upidb.PTQ(dataset.AttrCountry, dataset.JapanCountry, 0.3))
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 3 (Country=Japan via secondary index, QT=0.3): %d pubs\n", res.Len())

	// Top-k: the 5 most confident MIT authors.
	topRes, err := authors.Run(ctx, upidb.TopKQuery(dataset.MITInstitution, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTop-5 MIT authors by confidence:\n")
	for i, r := range topRes.Collect() {
		name, _ := r.Tuple.DetValue(dataset.DetName)
		fmt.Printf("  #%d %s (%.0f%%)\n", i+1, name, r.Confidence*100)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
