package upidb_test

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 7), plus micro-benchmarks of the
// core operations. Each experiment benchmark runs the corresponding
// internal/bench experiment at a reduced scale and reports the
// headline modeled runtime as a custom metric (modeled_ms), alongside
// the usual wall-clock ns/op of regenerating the experiment.
//
// This file is an external test package (upidb_test): internal/bench
// itself imports the upidb facade for the planner-routing experiment,
// so importing it from inside package upidb would be an import cycle.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale experiment output (the numbers recorded in
// README.md) comes from cmd/upibench.

import (
	"context"
	"testing"

	upidb "upidb"
	"upidb/internal/bench"
	"upidb/internal/dataset"
	"upidb/internal/pii"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/upi"
)

// benchScale keeps experiment benchmarks fast enough to iterate.
const benchScale = 0.05

func runExperiment(b *testing.B, id string, headlineColumn string) {
	b.Helper()
	var headline float64
	for i := 0; i < b.N; i++ {
		env := bench.NewEnv(bench.Config{Scale: benchScale, Seed: 1})
		exp, err := bench.Run(context.Background(), env, id)
		if err != nil {
			b.Fatal(err)
		}
		col, err := exp.Column(headlineColumn)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, v := range col {
			sum += v
		}
		headline = sum / float64(len(col)) * 1000 // modeled ms
	}
	b.ReportMetric(headline, "modeled_ms")
}

func BenchmarkFig3CutoffRuntime(b *testing.B)   { runExperiment(b, "fig3", "nonsel QT=0.05") }
func BenchmarkFig4Query1(b *testing.B)          { runExperiment(b, "fig4", "UPI") }
func BenchmarkFig5Query2(b *testing.B)          { runExperiment(b, "fig5", "UPI") }
func BenchmarkFig6Query3(b *testing.B)          { runExperiment(b, "fig6", "PII on UPI w/ Tailored Access") }
func BenchmarkFig7Query4(b *testing.B)          { runExperiment(b, "fig7", "Continuous UPI") }
func BenchmarkFig8Query5(b *testing.B)          { runExperiment(b, "fig8", "PII on Continuous UPI") }
func BenchmarkFig9Deterioration(b *testing.B)   { runExperiment(b, "fig9", "Fractured UPI") }
func BenchmarkFig10FracturedModel(b *testing.B) { runExperiment(b, "fig10", "Real") }
func BenchmarkFig11PointerEstimate(b *testing.B) {
	runExperiment(b, "fig11", "Real")
}
func BenchmarkFig12CutoffModel(b *testing.B)  { runExperiment(b, "fig12", "nonsel QT=0.05") }
func BenchmarkTable7Maintenance(b *testing.B) { runExperiment(b, "table7", "Insert [s]") }
func BenchmarkTable8Merging(b *testing.B)     { runExperiment(b, "table8", "Time [s]") }

// Micro-benchmarks of the core operations, at fixed dataset size.

func benchTuples(b *testing.B, n int) []*upidb.Tuple {
	b.Helper()
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors = n
	cfg.Publications = 1
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d.Authors
}

func BenchmarkUPIBulkBuild(b *testing.B) {
	tuples := benchTuples(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
		if _, err := upi.BulkBuild(fs, "t", dataset.AttrInstitution,
			[]string{dataset.AttrCountry}, upi.Options{Cutoff: 0.1}, tuples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUPIInsert(b *testing.B) {
	tuples := benchTuples(b, b.N+1)
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	tab, err := upi.BulkBuild(fs, "t", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upi.Options{Cutoff: 0.1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Insert(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUPIQueryPTQ(b *testing.B) {
	tuples := benchTuples(b, 5000)
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	tab, err := upi.BulkBuild(fs, "t", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upi.Options{Cutoff: 0.1}, tuples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tab.Query(context.Background(), dataset.MITInstitution, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUPIQuerySecondaryTailored(b *testing.B) {
	tuples := benchTuples(b, 5000)
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	tab, err := upi.BulkBuild(fs, "t", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upi.Options{Cutoff: 0.1}, tuples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tab.QuerySecondary(context.Background(), dataset.AttrCountry, dataset.JapanCountry, 0.3, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPIIQueryPTQ(b *testing.B) {
	tuples := benchTuples(b, 5000)
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	tab, err := pii.BulkBuild(fs, "t", []string{dataset.AttrInstitution}, pii.Options{}, tuples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Query(context.Background(), dataset.AttrInstitution, dataset.MITInstitution, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeInsertFlushQuery(b *testing.B) {
	tuples := benchTuples(b, 2000)
	db, err := upidb.Create("")
	if err != nil {
		b.Fatal(err)
	}
	tab, err := db.CreateTable("t", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upidb.WithCutoff(0.1), upidb.WithBufferTuples(500))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := *tuples[i%len(tuples)]
		tup.ID = uint64(i + 1)
		if err := tab.Insert(&tup); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if _, err := tab.Run(context.Background(), upidb.PTQ("", dataset.MITInstitution, 0.3)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
