package upidb

// Concurrent soak: goroutines insert, delete, flush and query one
// table while a background auto-merger folds fractures, then the final
// state is validated against exact ground truth. Run under -race in CI
// to patrol the engine's concurrent paths; unlike the serial soak it
// also runs (shortened) in -short mode.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const soakValues = 8

func soakValue(v int) string { return fmt.Sprintf("v%02d", ((v%soakValues)+soakValues)%soakValues) }

// soakTuple is deterministic in (id): same ID always produces the same
// tuple, with alternatives on two adjacent values of the universe. It
// panics rather than failing the test because it runs on writer
// goroutines (the distributions it builds are always valid).
func soakTuple(id uint64) *Tuple {
	v := int(id % soakValues)
	p := 0.3 + float64((id*7)%60)/100
	alts := []Alternative{{Value: soakValue(v), Prob: p}}
	alts = append(alts, Alternative{Value: soakValue(v + 1), Prob: (1 - p) * 0.9})
	x, err := NewDiscrete(alts)
	if err != nil {
		panic(err)
	}
	y, err := NewDiscrete([]Alternative{{Value: "y" + soakValue(v), Prob: 1}})
	if err != nil {
		panic(err)
	}
	return &Tuple{
		ID: id, Existence: 0.9,
		Unc: []UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}},
	}
}

func TestSoakConcurrentEngine(t *testing.T) {
	perWriter := 600
	if testing.Short() {
		perWriter = 150
	}
	const writers = 3

	db := mustCreate(t)
	tab, err := db.CreateTable("conc", "X", []string{"Y"},
		WithCutoff(0.15), WithBufferTuples(64), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.StartAutoMerge(AutoMergeOptions{MaxFractures: 4, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	// Writers insert disjoint ID ranges and publish each inserted ID;
	// the deleter consumes them and deletes every other one, so ground
	// truth (inserted minus deleted) is exact regardless of timing.
	inserted := make(chan uint64, 256)
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) * 1_000_000
			for i := 0; i < perWriter; i++ {
				id := base + uint64(i)
				if err := tab.Insert(soakTuple(id)); err != nil {
					errs <- err
					return
				}
				inserted <- id
			}
		}(w)
	}

	deleted := make(map[uint64]bool)
	var delWg sync.WaitGroup
	delWg.Add(1)
	go func() {
		defer delWg.Done()
		odd := false
		for id := range inserted {
			if odd {
				tab.Delete(id)
				deleted[id] = true
			}
			odd = !odd
		}
	}()

	// Readers check structural invariants on every answer: descending
	// confidence, no duplicate IDs, no errors.
	stop := make(chan struct{})
	var readWg sync.WaitGroup
	for r := 0; r < 3; r++ {
		readWg.Add(1)
		go func(seed int64) {
			defer readWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := soakValue(rng.Intn(soakValues))
				var q Query
				switch rng.Intn(3) {
				case 0:
					q = PTQ("", v, 0.1)
				case 1:
					q = PTQ("Y", "y"+v, 0.1)
				case 2:
					q = TopKQuery(v, 5)
				}
				res, err := tab.Run(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				rs := res.Collect()
				if q.kind == KindTopK && len(rs) > 5 {
					errs <- fmt.Errorf("TopK returned %d > k results", len(rs))
					return
				}
				seen := make(map[uint64]bool, len(rs))
				for i, r := range rs {
					if i > 0 && rs[i-1].Confidence < r.Confidence {
						errs <- fmt.Errorf("results not sorted: %v before %v", rs[i-1], r)
						return
					}
					if seen[r.Tuple.ID] {
						errs <- fmt.Errorf("duplicate tuple %d in one answer", r.Tuple.ID)
						return
					}
					seen[r.Tuple.ID] = true
				}
			}
		}(int64(r + 1))
	}

	wg.Wait()
	close(inserted)
	delWg.Wait()
	close(stop)
	readWg.Wait()
	if err := tab.StopAutoMerge(); err != nil {
		t.Fatalf("background merge: %v", err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Settle and validate against exact ground truth.
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for w := 0; w < writers; w++ {
		base := uint64(w+1) * 1_000_000
		for i := 0; i < perWriter; i++ {
			id := base + uint64(i)
			if deleted[id] {
				continue
			}
			v := int(id % soakValues)
			want[soakValue(v)]++
			want[soakValue(v+1)]++
		}
	}
	for v := 0; v < soakValues; v++ {
		res, err := tab.Run(context.Background(), PTQ("", soakValue(v), 0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != want[soakValue(v)] {
			t.Errorf("final state %s: %d live tuples, want %d", soakValue(v), res.Len(), want[soakValue(v)])
		}
	}
}
