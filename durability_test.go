package upidb

// Facade-level durability tests: the Create/Open lifecycle over the
// real-disk backend, WAL recovery of acknowledged-but-unflushed writes
// through the public API, the reopen-with-stale-stats contract (a
// reopened table stays on heuristic routing until its first merge
// reseeds the catalog), and option-scope validation.

import (
	"context"
	"fmt"
	"testing"

	"upidb/internal/storage"
)

// durTuple builds a tuple with primary attribute X = val (prob 0.9)
// and secondary Y = "y"+val, existence 1 — confidence 0.9 for PTQs.
func durTuple(t testing.TB, id uint64, val string) *Tuple {
	t.Helper()
	x, err := NewDiscrete([]Alternative{{Value: val, Prob: 0.9}, {Value: "other", Prob: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	y, err := NewDiscrete([]Alternative{{Value: "y" + val, Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return &Tuple{ID: id, Existence: 1, Unc: []UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}}}
}

func durVal(id uint64) string { return fmt.Sprintf("v%02d", id%7) }

// verifyLive checks that a PTQ per value returns exactly the live IDs.
func verifyLive(t *testing.T, tab *Table, live map[uint64]bool) {
	t.Helper()
	ctx := context.Background()
	want := make(map[string]map[uint64]bool)
	for id := range live {
		v := durVal(id)
		if want[v] == nil {
			want[v] = make(map[uint64]bool)
		}
		want[v][id] = true
	}
	for i := 0; i < 7; i++ {
		v := fmt.Sprintf("v%02d", i)
		res, err := tab.Run(ctx, PTQ("", v, 0.5))
		if err != nil {
			t.Fatalf("query %s: %v", v, err)
		}
		got := make(map[uint64]bool)
		for _, r := range res.Collect() {
			got[r.Tuple.ID] = true
		}
		if len(got) != len(want[v]) {
			t.Fatalf("value %s: got %d results, want %d", v, len(got), len(want[v]))
		}
		for id := range want[v] {
			if !got[id] {
				t.Fatalf("value %s: missing id %d", v, id)
			}
		}
	}
}

// TestFacadeDiskDurableRoundTrip: Create(dir) stores real files with
// durable tables by default; after Close, Open(dir)+OpenTable recovers
// every acknowledged write — flushed fractures, the WAL-logged RAM
// buffer, and pending deletes. The reopened table starts with an
// unseeded catalog (heuristic routing) until its first merge reseeds
// it and planner routing resumes — the reopen-with-stale-stats
// contract, end to end.
func TestFacadeDiskDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("events", "X", []string{"Y"}, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]bool)
	for id := uint64(1); id <= 20; id++ {
		if err := tab.Insert(durTuple(t, id, durVal(id))); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	// Buffered tail: WAL-only at close time.
	for id := uint64(21); id <= 30; id++ {
		if err := tab.Insert(durTuple(t, id, durVal(id))); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	// One on-disk delete and one buffered delete.
	for _, id := range []uint64{5, 25} {
		if err := tab.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(live, id)
	}
	verifyLive(t, tab, live)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rtab, err := re.OpenTable("events", "X", []string{"Y"}, WithCutoff(0.1))
	if err != nil {
		t.Fatal(err)
	}
	verifyLive(t, rtab, live)

	// Reopened content is unknown to the catalog: heuristic routing
	// until the first merge re-derives the histograms.
	if si := rtab.StatsInfo(); si.Seeded {
		t.Fatalf("reopened table should start unseeded: %+v", si)
	}
	ctx := context.Background()
	res, err := rtab.Run(ctx, PTQ("", "v01", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if src := res.Info().PlanSource; src != PlanSourceHeuristic {
		t.Fatalf("pre-merge routing: %q, want heuristic", src)
	}
	if err := rtab.Merge(); err != nil {
		t.Fatal(err)
	}
	if si := rtab.StatsInfo(); !si.Seeded || si.Rebuilds != 1 {
		t.Fatalf("merge should reseed the catalog: %+v", si)
	}
	res, err = rtab.Run(ctx, PTQ("", "v01", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if src := res.Info().PlanSource; src != PlanSourceStats {
		t.Fatalf("post-merge routing: %q, want stats", src)
	}
	verifyLive(t, rtab, live)
}

// TestFacadeDurableKillRecovery: with durability on, a database that is
// never closed ("killed") still recovers every acknowledged write on
// reopen over the same backend — the WAL contract through the facade.
func TestFacadeDurableKillRecovery(t *testing.T) {
	mem := storage.NewMemBackend()
	db, err := Create("", WithBackend(mem), WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("t", "X", []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]bool)
	for id := uint64(1); id <= 12; id++ {
		if err := tab.Insert(durTuple(t, id, durVal(id))); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	if err := tab.Delete(7); err != nil {
		t.Fatal(err)
	}
	delete(live, 7)
	// Kill: abandon db without Flush or Close. All 12 inserts and the
	// delete live only in the WAL.
	re, err := Open("", WithBackend(mem), WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	rtab, err := re.OpenTable("t", "X", []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	verifyLive(t, rtab, live)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeCreateOpenContract: Create refuses an existing database,
// Open refuses a missing one, and database-level options are rejected
// at table scope.
func TestFacadeCreateOpenContract(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir); err == nil {
		t.Fatal("Create over an existing database accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open of an empty directory accepted")
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open of a fresh in-memory backend accepted")
	}

	mdb := mustCreate(t)
	if _, err := mdb.CreateTable("t", "X", nil, WithDiskBackend(t.TempDir())); err == nil {
		t.Fatal("database-level option accepted at table scope")
	}
	if _, err := mdb.CreateTable("t", "X", nil, WithDiskParams(DiskParams())); err == nil {
		t.Fatal("WithDiskParams accepted at table scope")
	}
	// Table-scope durability override works: a durable table over the
	// in-memory backend (non-durable default) gains a WAL.
	tab, err := mdb.CreateTable("d", "X", nil, WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(durTuple(t, 1, "v01")); err != nil {
		t.Fatal(err)
	}
}
