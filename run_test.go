package upidb

// Tests for the unified Run API: cancellation semantics, typed
// sentinels, per-query options, streaming-vs-Collect equivalence, and
// golden equivalence of the deprecated wrappers.

//lint:file-ignore SA1019 the golden tests intentionally exercise the deprecated wrappers against Run.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// fracturedTable builds a table with a bulk-loaded main, several
// fractures, pending deletes and a RAM buffer, so queries cross every
// partition type.
func fracturedTable(t *testing.T, db *DB, par int) *Table {
	t.Helper()
	mk := func(id uint64, v1, v2 string, p float64) *Tuple {
		x, err := NewDiscrete([]Alternative{{Value: v1, Prob: p}, {Value: v2, Prob: (1 - p) * 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		y, err := NewDiscrete([]Alternative{{Value: "y" + v1, Prob: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return &Tuple{ID: id, Existence: 0.9, Unc: []UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}}}
	}
	val := func(i int) string { return fmt.Sprintf("v%02d", i%7) }
	var load []*Tuple
	for i := 0; i < 120; i++ {
		load = append(load, mk(uint64(i+1), val(i), val(i+1), 0.3+float64(i%60)/100))
	}
	tab, err := db.BulkLoadTable(fmt.Sprintf("runtest%d", par), "X", []string{"Y"},
		load, WithCutoff(0.15), WithParallelism(par))
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(1000)
	for f := 0; f < 4; f++ {
		for i := 0; i < 25; i++ {
			if err := tab.Insert(mk(next, val(int(next)), val(int(next)+1), 0.4+float64(int(next)%50)/100)); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := tab.Delete(uint64(f*10 + 1)); err != nil {
			t.Fatal(err)
		}
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Leave some tuples and a delete pending in the RAM buffer.
	for i := 0; i < 10; i++ {
		if err := tab.Insert(mk(next, val(int(next)), val(int(next)+1), 0.5)); err != nil {
			t.Fatal(err)
		}
		next++
	}
	if err := tab.Delete(55); err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestRunCanceledContext: a Run launched with an already-cancelled
// context fails with ErrCanceled immediately — no modeled I/O charged,
// no results, and well under a millisecond of wall clock.
func TestRunCanceledContext(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := db.DiskStats()
	start := time.Now()
	_, err := tab.Run(ctx, PTQ("", "v01", 0.1))
	wall := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled: %v", err)
	}
	if d := db.DiskStats().Sub(before); d.Elapsed != 0 || d.BytesRead != 0 || d.FileOpens != 0 {
		t.Fatalf("cancelled query charged modeled I/O: %v", d)
	}
	// The acceptance bound is 1 ms; allow headroom for a loaded CI
	// host — the path is a single atomic context check.
	if wall > 50*time.Millisecond {
		t.Fatalf("cancelled query took %v", wall)
	}
}

// TestRunDeadlineExceeded: an expired deadline behaves like a cancel
// but wraps context.DeadlineExceeded.
func TestRunDeadlineExceeded(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := tab.Run(ctx, TopKQuery("v01", 3))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

// TestRunUnknownAttr: querying an unindexed attribute fails with the
// typed sentinel at the facade, before any partition work.
func TestRunUnknownAttr(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	if _, err := tab.Run(context.Background(), PTQ("Nope", "x", 0.1)); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("want ErrUnknownAttr, got %v", err)
	}
}

// TestRunClosed: after Close, queries and mutations fail with
// ErrClosed; Close is idempotent.
func TestRunClosed(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Run(context.Background(), PTQ("", "v01", 0.1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: %v", err)
	}
	d, _ := NewDiscrete([]Alternative{{Value: "v01", Prob: 1}})
	if err := tab.Insert(&Tuple{ID: 9999, Existence: 1, Unc: []UncField{{Name: "X", Dist: d}, {Name: "Y", Dist: d}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v", err)
	}
	if err := tab.Delete(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: %v", err)
	}
	if err := tab.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v", err)
	}
	if err := tab.Merge(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Merge after Close: %v", err)
	}
	if err := tab.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestRunStreamingMatchesCollect: at every parallelism setting, All
// yields exactly the tuples Collect returns, in identical order, and
// both match the serial baseline.
func TestRunStreamingMatchesCollect(t *testing.T) {
	queries := []Query{
		PTQ("", "v01", 0.05),
		PTQ("", "v03", 0.4),
		PTQ("Y", "yv02", 0.1),
		TopKQuery("v04", 7),
	}
	type key struct {
		id   uint64
		conf float64
	}
	baseline := make(map[int][]key)
	for _, par := range []int{1, 2, 4, 0} {
		db := mustCreate(t)
		tab := fracturedTable(t, db, par)
		for qi, q := range queries {
			res, err := tab.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("par=%d q=%d: %v", par, qi, err)
			}
			collected := res.Collect()
			var streamed []key
			for r, err := range res.All() {
				if err != nil {
					t.Fatalf("par=%d q=%d stream: %v", par, qi, err)
				}
				streamed = append(streamed, key{r.Tuple.ID, r.Confidence})
			}
			if len(streamed) != len(collected) {
				t.Fatalf("par=%d q=%d: stream %d vs collect %d", par, qi, len(streamed), len(collected))
			}
			for i, k := range streamed {
				if collected[i].Tuple.ID != k.id || collected[i].Confidence != k.conf {
					t.Fatalf("par=%d q=%d row %d: stream %+v vs collect %+v", par, qi, i, k, collected[i])
				}
			}
			if par == 1 {
				baseline[qi] = streamed
			} else if !reflect.DeepEqual(baseline[qi], streamed) {
				t.Fatalf("par=%d q=%d: diverged from serial baseline", par, qi)
			}
		}
	}
}

// TestRunPerQueryParallelism: WithParallelism overrides the table
// default for one query without changing results or the table's
// setting for later queries.
func TestRunPerQueryParallelism(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 1)
	ctx := context.Background()
	base, err := tab.Run(ctx, PTQ("", "v01", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := tab.Run(ctx, PTQ("", "v01", 0.05).WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Collect(), wide.Collect()) {
		t.Fatal("per-query parallelism changed results")
	}
	again, err := tab.Run(ctx, PTQ("", "v01", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Collect(), again.Collect()) {
		t.Fatal("table default parallelism was clobbered by a per-query override")
	}
}

// TestRunModeledCostParallelismInvariant: WithStats reports the same
// modeled time at every fan-out width (the tape-replay guarantee
// surfaced through the new API).
func TestRunModeledCostParallelismInvariant(t *testing.T) {
	var want time.Duration
	for i, par := range []int{1, 3, 8} {
		db := mustCreate(t)
		tab := fracturedTable(t, db, par)
		if err := tab.DropCaches(); err != nil {
			t.Fatal(err)
		}
		res, err := tab.Run(context.Background(), PTQ("", "v01", 0.05).WithStats())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Info().ModeledTime
		if got <= 0 {
			t.Fatalf("par=%d: no modeled time measured", par)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("par=%d: modeled %v != serial %v", par, got, want)
		}
	}
}
