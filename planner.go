package upidb

import (
	"fmt"

	"upidb/internal/histogram"
	"upidb/internal/planner"
	"upidb/internal/sim"
)

// BuildStats builds attribute-value + probability histograms (paper
// Section 6.1) from a representative sample of the table's tuples and
// attaches them to the table, enabling cost-based planning via Explain
// and QueryPlanned. Call it again after significant data drift.
func (t *Table) BuildStats(sample []*Tuple, attrs ...string) error {
	if len(attrs) == 0 {
		attrs = append([]string{t.store.Main().Attr()}, t.store.Main().SecondaryAttrs()...)
	}
	hists := make(map[string]*histogram.Histogram, len(attrs))
	for _, a := range attrs {
		h, err := histogram.Build(a, sample)
		if err != nil {
			return err
		}
		hists[a] = h
	}
	p, err := planner.New(t.store, hists, sim.DefaultParams())
	if err != nil {
		return err
	}
	t.plannerMu.Lock()
	t.planner = p
	t.plannerMu.Unlock()
	return nil
}

// currentPlanner returns the planner installed by BuildStats, if any.
func (t *Table) currentPlanner() *planner.Planner {
	t.plannerMu.RLock()
	defer t.plannerMu.RUnlock()
	return t.planner
}

// Explain returns the costed physical plans for a PTQ, cheapest first,
// in EXPLAIN-style text. BuildStats must have been called.
func (t *Table) Explain(attr, value string, qt float64) (string, error) {
	p := t.currentPlanner()
	if p == nil {
		return "", fmt.Errorf("upidb: call BuildStats before Explain")
	}
	plans, err := p.PlanPTQ(attr, value, qt)
	if err != nil {
		return "", err
	}
	return planner.Explain(plans), nil
}

// QueryPlanned runs the PTQ with the cheapest plan the cost model
// finds and reports which plan was used. BuildStats must have been
// called.
func (t *Table) QueryPlanned(attr, value string, qt float64) ([]Result, string, error) {
	p := t.currentPlanner()
	if p == nil {
		return nil, "", fmt.Errorf("upidb: call BuildStats before QueryPlanned")
	}
	rs, plan, err := p.Execute(attr, value, qt)
	return rs, plan.Kind.String(), err
}
