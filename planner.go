package upidb

import "upidb/internal/shard"

// How a query was routed, reported as QueryInfo.PlanSource and in the
// first line of Explain output.
const (
	// PlanSourceStats marks automatic planner routing from a fresh
	// statistics catalog.
	PlanSourceStats = "stats"
	// PlanSourceHeuristic marks the fixed heuristic routing (primary →
	// UPI scan, secondary → tailored secondary access), used when
	// statistics are absent or stale, or under WithHeuristic.
	PlanSourceHeuristic = "heuristic"
	// PlanSourceForced marks planner routing demanded by WithPlanner
	// regardless of catalog freshness.
	PlanSourceForced = "forced"
	// PlanSourceCached marks planner routing whose plans were served
	// from the generation-guarded plan cache: a repeat of a shape the
	// planner already costed, with the statistics catalogs and
	// partition layouts unchanged since. The plans — and therefore the
	// routing, admission verdict, results, statistics and modeled cost —
	// are identical to a fresh costing; only the provenance differs.
	PlanSourceCached = "cached-plan"
)

// BuildStats seeds the table's statistics catalog from a
// representative sample of tuples (paper Section 6.1). It is now a
// thin wrapper: every table maintains its catalog automatically —
// bulk loads seed it, inserts and deletes apply incremental deltas,
// and merges re-derive it from their own whole-heap scan — so calling
// BuildStats is only needed to bootstrap statistics for a reopened
// table before its first merge, or to replace them with a curated
// sample. With explicit attrs only those attributes are seeded; the
// rest are reset to unseeded.
// On a sharded table the sample is partitioned by owning shard and
// each shard's catalog seeded from its own slice.
func (t *Table) BuildStats(sample []*Tuple, attrs ...string) error {
	return t.shards.Seed(sample, attrs...)
}

// StatsInfo is a snapshot of a table's statistics-catalog state — the
// inputs to Run's automatic routing decision.
type StatsInfo struct {
	// Seeded reports whether the primary attribute has complete
	// statistics (from a bulk load, BuildStats, a merge re-derivation,
	// or because the table was created empty).
	Seeded bool
	// Staleness is the unabsorbed-delta ratio in [0, 1]: deletes of
	// on-disk tuples (known only by ID) that the histograms could not
	// subtract, over tracked tuples. Each merge resets it to zero.
	Staleness float64
	// Threshold is the staleness ratio up to which Run trusts the
	// catalog and routes through the planner automatically; negative
	// means automatic routing is disabled.
	Threshold float64
	// Rebuilds counts the merge re-derivations absorbed so far.
	Rebuilds int
	// TrackedTuples is the number of tuples the catalog currently
	// summarizes; Unabsorbed is the raw unabsorbed-delta count.
	TrackedTuples int64
	Unabsorbed    int64
	// Generation is the summed per-shard catalog generation — the token
	// the plan cache keys its validity on. Seeding, merge re-derivations
	// and staleness-threshold transitions advance it; a cached plan is
	// only ever served while it is unchanged.
	Generation uint64
	// Shards is the per-shard breakdown (tuples, fractures, buffered
	// inserts, size, staleness per shard), in shard order — the view
	// that exposes skew the table-level sums above hide. A one-shard
	// table reports one entry describing the whole table.
	Shards []ShardStatsInfo
}

// ShardStatsInfo is one shard's slice of a table's state.
type ShardStatsInfo = shard.ShardStats

// StatsInfo reports the current state of the table's statistics
// catalogs. On a sharded table the per-shard catalogs aggregate:
// counts sum, Seeded requires every shard, Staleness is the pooled
// unabsorbed ratio.
func (t *Table) StatsInfo() StatsInfo {
	sum := t.shards.StatsSummary()
	return StatsInfo{
		Seeded:        sum.Seeded,
		Staleness:     sum.Staleness,
		Threshold:     sum.Threshold,
		Rebuilds:      sum.Rebuilds,
		TrackedTuples: sum.Tracked,
		Unabsorbed:    sum.Unabsorbed,
		Generation:    t.shards.Generation(),
		Shards:        t.shards.PerShardStats(),
	}
}
