package upidb

import (
	"context"

	"upidb/internal/histogram"
	"upidb/internal/planner"
	"upidb/internal/sim"
)

// BuildStats builds attribute-value + probability histograms (paper
// Section 6.1) from a representative sample of the table's tuples and
// attaches them to the table, enabling cost-based planning via
// Query.WithPlanner / WithExplain (and the legacy Explain and
// QueryPlanned wrappers). Call it again after significant data drift.
func (t *Table) BuildStats(sample []*Tuple, attrs ...string) error {
	if len(attrs) == 0 {
		attrs = append([]string{t.store.Main().Attr()}, t.store.Main().SecondaryAttrs()...)
	}
	hists := make(map[string]*histogram.Histogram, len(attrs))
	for _, a := range attrs {
		h, err := histogram.Build(a, sample)
		if err != nil {
			return err
		}
		hists[a] = h
	}
	p, err := planner.New(t.store, hists, sim.DefaultParams())
	if err != nil {
		return err
	}
	t.plannerMu.Lock()
	t.planner = p
	t.plannerMu.Unlock()
	return nil
}

// currentPlanner returns the planner installed by BuildStats, if any.
func (t *Table) currentPlanner() *planner.Planner {
	t.plannerMu.RLock()
	defer t.plannerMu.RUnlock()
	return t.planner
}

// Explain returns the costed physical plans for a PTQ, cheapest first,
// in EXPLAIN-style text. BuildStats must have been called (ErrNoStats
// otherwise).
//
// Deprecated: use Run with WithExplain:
//
//	res, err := t.Run(ctx, upidb.PTQ(attr, value, qt).WithExplain())
//	plans := res.Info().Explain
func (t *Table) Explain(attr, value string, qt float64) (string, error) {
	res, err := t.Run(context.Background(), PTQ(attr, value, qt).WithExplain())
	if err != nil {
		return "", err
	}
	return res.Info().Explain, nil
}

// QueryPlanned runs the PTQ with the cheapest plan the cost model
// finds and reports which plan was used. BuildStats must have been
// called (ErrNoStats otherwise).
//
// Deprecated: use Run with WithPlanner:
//
//	res, err := t.Run(ctx, upidb.PTQ(attr, value, qt).WithPlanner())
//	plan := res.Info().Plan
func (t *Table) QueryPlanned(attr, value string, qt float64) ([]Result, string, error) {
	res, err := t.Run(context.Background(), PTQ(attr, value, qt).WithPlanner())
	if err != nil {
		return nil, "", err
	}
	return res.results, res.Info().Plan, nil
}
