package upidb

// Tests for the self-maintaining statistics subsystem: catalog
// freshness across concurrent maintenance (the race-enabled soak),
// and deadline-aware admission control.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"upidb/internal/histogram"
)

// TestSoakStatsFreshness: under interleaved inserts, deletes, flushes
// and background auto-merges (at least 3), default Run keeps working
// without ErrNoStats, and once the table quiesces the catalog's
// histograms match a from-scratch histogram.Build over the true live
// tuples exactly. Run with -race: a reader hammers planner-routed
// queries while the writer and the background merger churn.
func TestSoakStatsFreshness(t *testing.T) {
	mk := func(id uint64, v1, v2 string, p float64) *Tuple {
		x, err := NewDiscrete([]Alternative{{Value: v1, Prob: p}, {Value: v2, Prob: (1 - p) * 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		y, err := NewDiscrete([]Alternative{{Value: "y" + v1, Prob: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return &Tuple{ID: id, Existence: 0.9, Unc: []UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}}}
	}
	val := func(i int) string { return fmt.Sprintf("v%02d", i%9) }

	var load []*Tuple
	mirror := make(map[uint64]*Tuple) // ground truth, guarded by mu
	var mu sync.Mutex
	for i := 0; i < 200; i++ {
		tup := mk(uint64(i+1), val(i), val(i+1), 0.3+float64(i%60)/100)
		load = append(load, tup)
		mirror[tup.ID] = tup
	}
	db := mustCreate(t)
	defer db.Close()
	tab, err := db.BulkLoadTable("statsoak", "X", []string{"Y"}, load, WithCutoff(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.StartAutoMerge(AutoMergeOptions{MaxFractures: 2, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	// Reader: default Runs must never fail (in particular never with
	// ErrNoStats) while maintenance churns underneath.
	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerErr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			res, err := tab.Run(context.Background(), PTQ("", val(i), 0.2))
			if err != nil {
				readerErr <- fmt.Errorf("reader query %d: %w", i, err)
				return
			}
			if src := res.Info().PlanSource; src != PlanSourceStats && src != PlanSourceHeuristic && src != PlanSourceCached {
				readerErr <- fmt.Errorf("reader query %d: unexpected plan source %q", i, src)
				return
			}
		}
	}()

	// Writer: insert batches, delete on-disk tuples (unabsorbable
	// deltas → staleness) and flush, until the background merger has
	// re-derived the catalog at least 3 times.
	nextID := uint64(1000)
	delID := uint64(1) // bulk-loaded IDs are on disk from the start
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; tab.StatsInfo().Rebuilds < 3; round++ {
		if time.Now().After(deadline) {
			t.Fatalf("only %d rebuilds after %d rounds", tab.StatsInfo().Rebuilds, round)
		}
		mu.Lock()
		for i := 0; i < 15; i++ {
			tup := mk(nextID, val(int(nextID)), val(int(nextID)+3), 0.35+float64(int(nextID)%55)/100)
			if err := tab.Insert(tup); err != nil {
				mu.Unlock()
				t.Fatal(err)
			}
			mirror[tup.ID] = tup
			nextID++
		}
		for i := 0; i < 2 && delID < 200; i++ {
			if err := tab.Delete(delID); err != nil {
				mu.Unlock()
				t.Fatal(err)
			}
			delete(mirror, delID)
			delID += 3
		}
		mu.Unlock()
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}
	if err := tab.StopAutoMerge(); err != nil {
		t.Fatal(err)
	}

	// Quiesce with a final merge: every delta is absorbed, so the
	// catalog must now equal a from-scratch build over the live set.
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	si := tab.StatsInfo()
	if si.Rebuilds < 4 || si.Staleness != 0 || si.Unabsorbed != 0 {
		t.Fatalf("post-quiesce catalog: %+v", si)
	}
	live := make([]*Tuple, 0, len(mirror))
	for _, tup := range mirror {
		live = append(live, tup)
	}
	if si.TrackedTuples != int64(len(live)) {
		t.Fatalf("tracked %d tuples, truth has %d", si.TrackedTuples, len(live))
	}
	for _, attr := range []string{"X", "Y"} {
		want, err := histogram.Build(attr, live)
		if err != nil {
			t.Fatal(err)
		}
		got := tab.shards.Catalog(0).Histogram(attr)
		if got == nil {
			t.Fatalf("no seeded histogram for %q after merges", attr)
		}
		if got.TotalTuples() != want.TotalTuples() || got.TotalEntries() != want.TotalEntries() ||
			got.DistinctValues() != want.DistinctValues() {
			t.Fatalf("%s totals diverged: tuples %d/%d entries %d/%d distinct %d/%d", attr,
				got.TotalTuples(), want.TotalTuples(), got.TotalEntries(), want.TotalEntries(),
				got.DistinctValues(), want.DistinctValues())
		}
		for i := 0; i < 9; i++ {
			v := val(i)
			if attr == "Y" {
				v = "y" + v
			}
			for _, qt := range []float64{0, 0.1, 0.3, 0.6} {
				g, w := got.EstimateEntries(v, qt), want.EstimateEntries(v, qt)
				if math.Abs(g-w) > 1e-6 {
					t.Fatalf("%s EstimateEntries(%q, %v): %v vs %v", attr, v, qt, g, w)
				}
			}
		}
	}
	// And the planner-by-default route answers exactly the truth.
	for i := 0; i < 9; i++ {
		res, err := tab.Run(context.Background(), PTQ("", val(i), 0.2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Info().PlanSource != PlanSourceStats {
			t.Fatalf("post-quiesce routing: %q", res.Info().PlanSource)
		}
		want := 0
		for _, tup := range mirror {
			if tup.Confidence("X", val(i)) >= 0.2 {
				want++
			}
		}
		if res.Len() != want {
			t.Fatalf("value %s: got %d results, truth %d", val(i), res.Len(), want)
		}
	}
}

// TestRunDeadlineAdmission: a Run whose remaining deadline is below
// the cheapest plan's modeled cost is refused up front — ErrCanceled,
// zero modeled I/O, zero pinned partitions — while a generous deadline
// admits the same query.
func TestRunDeadlineAdmission(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if si := tab.StatsInfo(); !si.Seeded || si.Staleness > si.Threshold {
		t.Fatalf("table should have a fresh catalog: %+v", si)
	}
	// The table spans 5 partitions; every plan models at least 4 file
	// opens (100 ms each), so 200 ms of wall deadline can never cover
	// the modeled service time.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	before := db.DiskStats()
	_, err := tab.Run(ctx, PTQ("", "v01", 0.05))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled from admission, got %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("admission should refuse before the deadline expires: %v", err)
	}
	if d := db.DiskStats().Sub(before); d.Elapsed != 0 || d.BytesRead != 0 || d.FileOpens != 0 {
		t.Fatalf("refused query charged modeled I/O: %v", d)
	}
	// Zero pinned partitions: a merge right after the refusal must be
	// able to remove the old generation's files immediately.
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	if db.fs.Exists("runtest0.main0.upi.heap") {
		t.Fatal("old main generation survived the merge: the refused query leaked a pin")
	}
	// A deadline with headroom admits and completes the same query.
	ctxOK, cancelOK := context.WithTimeout(context.Background(), time.Hour)
	defer cancelOK()
	res, err := tab.Run(ctxOK, PTQ("", "v01", 0.05))
	if err != nil || res.Len() == 0 {
		t.Fatalf("admitted query: %v, %d results", err, res.Len())
	}
	if res.Info().PlanSource != PlanSourceStats {
		t.Fatalf("admitted query source: %q", res.Info().PlanSource)
	}
}
