// Command upilint is the engine's multichecker: it bundles the custom
// analyzers that encode upidb's load-bearing invariants (lockcheck,
// sentinelcheck, ctxcheck, sidebandcheck) with in-tree equivalents of
// the high-value standard passes go vet's default set omits
// (lostcancel, nilness, unusedwrite), and exits non-zero when any
// diagnostic survives targeted //lint: suppression.
//
// Usage:
//
//	go run ./cmd/upilint ./...
//	go run ./cmd/upilint -tests=false -checks lockcheck,ctxcheck ./internal/...
//
// The rule catalog — what each analyzer enforces and why the
// invariant exists — is in the README's "Static analysis" section.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"upidb/internal/lint"
	"upidb/internal/lint/ctxcheck"
	"upidb/internal/lint/lockcheck"
	"upidb/internal/lint/sentinelcheck"
	"upidb/internal/lint/sidebandcheck"
	"upidb/internal/lint/stdlite"
)

// all is the registry, in catalog order.
var all = []*lint.Analyzer{
	lockcheck.Analyzer,
	sentinelcheck.Analyzer,
	ctxcheck.Analyzer,
	sidebandcheck.Analyzer,
	stdlite.LostCancel,
	stdlite.Nilness,
	stdlite.UnusedWrite,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: upilint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upilint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := lint.Load(lint.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upilint:", err)
		os.Exit(2)
	}

	diags := lint.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "upilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(checks string) ([]*lint.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
