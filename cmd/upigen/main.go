// Command upigen writes the synthetic uncertain datasets to CSV for
// inspection: the DBLP-like Author/Publication tables and the
// Cartel-like CarObservation table (see internal/dataset and the
// substitution notes in README.md).
//
// Usage:
//
//	upigen [-dataset dblp|cartel] [-scale 0.01] [-seed 1] [-n 20] [-out -]
//
// With -out - (default) rows go to stdout; otherwise to the named file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upidb/internal/dataset"
	"upidb/internal/prob"
)

func main() {
	var (
		ds    = flag.String("dataset", "dblp", "dblp or cartel")
		scale = flag.Float64("scale", 0.01, "dataset scale factor")
		seed  = flag.Int64("seed", 1, "generation seed")
		n     = flag.Int("n", 20, "rows to emit (0 = all)")
		out   = flag.String("out", "-", "output file, or - for stdout")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upigen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	var err error
	switch *ds {
	case "dblp":
		err = writeDBLP(bw, *scale, *seed, *n)
	case "cartel":
		err = writeCartel(bw, *scale, *seed, *n)
	default:
		err = fmt.Errorf("unknown dataset %q", *ds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "upigen:", err)
		os.Exit(1)
	}
}

func distString(d prob.Discrete) string {
	parts := make([]string, len(d))
	for i, a := range d {
		parts[i] = fmt.Sprintf("%s:%.3f", a.Value, a.Prob)
	}
	return strings.Join(parts, "|")
}

func writeDBLP(w io.Writer, scale float64, seed int64, n int) error {
	cfg := dataset.DefaultDBLPConfig().Scaled(scale)
	cfg.Seed = seed
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "table,id,name_or_journal,existence,institution_dist,country_dist")
	emit := func(table string, rows int) {
		for i := 0; i < rows; i++ {
			var t = d.Authors[i]
			nameField := dataset.DetName
			if table == "publication" {
				t = d.Publications[i]
				nameField = dataset.DetJournal
			}
			name, _ := t.DetValue(nameField)
			inst, _ := t.Uncertain(dataset.AttrInstitution)
			country, _ := t.Uncertain(dataset.AttrCountry)
			fmt.Fprintf(w, "%s,%d,%s,%.3f,%s,%s\n",
				table, t.ID, name, t.Existence, distString(inst), distString(country))
		}
	}
	na, np := len(d.Authors), len(d.Publications)
	if n > 0 && n < na {
		na = n
	}
	if n > 0 && n < np {
		np = n
	}
	emit("author", na)
	emit("publication", np)
	return nil
}

func writeCartel(w io.Writer, scale float64, seed int64, n int) error {
	cfg := dataset.DefaultCartelConfig().Scaled(scale)
	cfg.Seed = seed
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "id,x,y,sigma,bound,speed,direction,segment_dist")
	rows := len(c.Observations)
	if n > 0 && n < rows {
		rows = n
	}
	for i := 0; i < rows; i++ {
		o := c.Observations[i]
		fmt.Fprintf(w, "%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%s\n",
			o.ID, o.Loc.Center.X, o.Loc.Center.Y, o.Loc.Sigma, o.Loc.Bound,
			o.Speed, o.Direction, distString(o.Segment))
	}
	return nil
}
