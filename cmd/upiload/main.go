// Command upiload is the load generator for upiserve: M concurrent
// clients driving a mixed PTQ / top-k / insert workload at an optional
// target rate, reporting throughput and latency percentiles as JSON.
//
//	upiload -addr http://localhost:8080 -table authors \
//	    -clients 16 -duration 10s -mix ptq=0.6,topk=0.2,insert=0.2
//
// The traffic matches the synthetic schema upiserve -preload writes:
// primary-attribute values v0..v15, secondary values w0..w7. The exit
// code is non-zero when any request failed at the transport level or
// with a 5xx (429s are expected under overload and reported, not
// fatal) — the CI smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// sample is one completed request.
type sample struct {
	kind    string
	status  int // 0 = transport error
	latency time.Duration
}

// mixSpec is the parsed -mix flag: kind → weight.
type mixSpec []struct {
	kind   string
	weight float64
}

func parseMix(v string) (mixSpec, error) {
	var mix mixSpec
	total := 0.0
	for _, part := range strings.Split(v, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -mix part %q: want kind=weight", part)
		}
		var w float64
		if _, err := fmt.Sscanf(kv[1], "%g", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", kv[1])
		}
		switch kv[0] {
		case "ptq", "topk", "insert", "delete":
		default:
			return nil, fmt.Errorf("unknown -mix kind %q", kv[0])
		}
		mix = append(mix, struct {
			kind   string
			weight float64
		}{kv[0], w})
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("-mix weights sum to zero")
	}
	return mix, nil
}

// pick draws a kind from the mix.
func (m mixSpec) pick(rng *rand.Rand) string {
	total := 0.0
	for _, e := range m {
		total += e.weight
	}
	x := rng.Float64() * total
	for _, e := range m {
		if x < e.weight {
			return e.kind
		}
		x -= e.weight
	}
	return m[len(m)-1].kind
}

// percentile returns the p-th percentile (0..100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// discoverPrimary asks the server's stats endpoint for the table's
// primary attribute, retrying briefly so the loadgen can start before
// the server finishes binding.
func discoverPrimary(client *http.Client, base, table string) (string, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		resp, err := client.Get(fmt.Sprintf("%s/v1/tables/%s/stats", base, table))
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("stats: %s: %s", resp.Status, strings.TrimSpace(string(body)))
			continue
		}
		var stats struct {
			PrimaryAttr string `json:"primary_attr"`
		}
		if err := json.Unmarshal(body, &stats); err != nil {
			return "", err
		}
		if stats.PrimaryAttr == "" {
			return "", fmt.Errorf("stats response missing primary_attr")
		}
		return stats.PrimaryAttr, nil
	}
	return "", lastErr
}

// scrapeServerMetrics pulls the server's /metrics exposition and
// extracts the server-side admission picture — engine admission
// verdicts and HTTP refusal counters — so the final report shows the
// server's view next to the client-side percentiles. Best-effort: any
// failure returns nil and the report simply omits the section.
func scrapeServerMetrics(client *http.Client, base string) map[string]float64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	want := map[string]string{
		`upidb_admission_total{verdict="admitted"}`: "admission_admitted",
		`upidb_admission_total{verdict="refused"}`:  "admission_refused",
		`upidb_admission_total{verdict="unpriced"}`: "admission_unpriced",
		"upidb_http_overload_refusals_total":        "http_overload_refusals",
		"upidb_http_deadline_refusals_total":        "http_deadline_refusals",
		"upidb_fracture_inserts_total":              "engine_inserts",
		"upidb_stream_yields_total":                 "engine_yields",
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		key, ok := want[line[:i]]
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err == nil {
			out[key] = v
		}
	}
	return out
}

func main() {
	log.SetFlags(0)
	var (
		addr      = flag.String("addr", "http://localhost:8080", "upiserve base URL")
		table     = flag.String("table", "authors", "table to drive")
		attr      = flag.String("attr", "", "PTQ attribute (empty = primary)")
		clients   = flag.Int("clients", 8, "concurrent client goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "run length")
		rate      = flag.Float64("rate", 0, "target total requests/sec (0 = unthrottled)")
		mixFlag   = flag.String("mix", "ptq=0.6,topk=0.2,insert=0.2", "traffic mix kind=weight,...")
		qt        = flag.Float64("qt", 0.25, "PTQ confidence threshold")
		k         = flag.Int("k", 10, "top-k result bound")
		timeoutMS = flag.Int("timeout-ms", 0, "per-request timeout_ms sent to the server (0 = none)")
		jsonOut   = flag.String("json", "", "write the report to this file (empty = stdout)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		failOn5xx = flag.Bool("fail-on-5xx", true, "exit non-zero on any 5xx or transport error")
	)
	flag.Parse()
	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*addr, "/")
	if *attr == "" {
		// Discover the primary attribute so inserts carry a valid
		// uncertain field (queries accept attr:"" as "primary" already).
		primary, err := discoverPrimary(client, base, *table)
		if err != nil {
			log.Fatalf("stats probe: %v (pass -attr explicitly to skip)", err)
		}
		*attr = primary
	}
	var insertSeq atomic.Uint64
	insertSeq.Store(1_000_000_000) // far above any preloaded ID

	// Per-client pacing: each of the N clients issues rate/N req/s.
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*clients) / *rate * float64(time.Second))
	}

	samples := make([][]sample, *clients)
	var wg sync.WaitGroup
	stopAt := time.Now().Add(*duration)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
			next := time.Now()
			for time.Now().Before(stopAt) {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				kind := mix.pick(rng)
				var (
					url  string
					body any
				)
				switch kind {
				case "ptq":
					url = fmt.Sprintf("%s/v1/tables/%s/query", base, *table)
					body = map[string]any{"kind": "ptq", "attr": *attr,
						"value": fmt.Sprintf("v%d", rng.Intn(16)), "qt": *qt, "timeout_ms": *timeoutMS}
				case "topk":
					url = fmt.Sprintf("%s/v1/tables/%s/query", base, *table)
					body = map[string]any{"kind": "topk",
						"value": fmt.Sprintf("v%d", rng.Intn(16)), "k": *k, "timeout_ms": *timeoutMS}
				case "insert":
					url = fmt.Sprintf("%s/v1/tables/%s/insert", base, *table)
					id := insertSeq.Add(1)
					body = map[string]any{"id": id, "existence": 1, "unc": []any{
						map[string]any{"name": *attr, "alts": []any{
							map[string]any{"value": fmt.Sprintf("v%d", rng.Intn(16)), "prob": 0.8},
							map[string]any{"value": fmt.Sprintf("v%d", rng.Intn(16)+16), "prob": 0.2},
						}},
					}}
				case "delete":
					url = fmt.Sprintf("%s/v1/tables/%s/delete", base, *table)
					body = map[string]any{"id": insertSeq.Load()}
				}
				buf, _ := json.Marshal(body)
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
				s := sample{kind: kind, latency: time.Since(t0)}
				if err != nil {
					s.status = 0
				} else {
					// Drain the streamed body so latency covers the full
					// response and connections are reused.
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.status = resp.StatusCode
					s.latency = time.Since(t0)
				}
				samples[c] = append(samples[c], s)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, s := range samples {
		all = append(all, s...)
	}
	lat := make([]time.Duration, 0, len(all))
	counts := map[string]int{}
	byKind := map[string][]time.Duration{}
	errTransport, err4xx, err5xx, err429 := 0, 0, 0, 0
	for _, s := range all {
		counts[s.kind]++
		switch {
		case s.status == 0:
			errTransport++
		case s.status == 429:
			err429++
		case s.status >= 500:
			err5xx++
		case s.status >= 400:
			err4xx++
		default:
			lat = append(lat, s.latency)
			byKind[s.kind] = append(byKind[s.kind], s.latency)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	type kindReport struct {
		Requests int     `json:"requests"`
		P50MS    float64 `json:"p50_ms"`
		P95MS    float64 `json:"p95_ms"`
		P99MS    float64 `json:"p99_ms"`
	}
	report := struct {
		Requests      int                   `json:"requests"`
		Succeeded     int                   `json:"succeeded"`
		DurationS     float64               `json:"duration_s"`
		ThroughputRPS float64               `json:"throughput_rps"`
		Errors        map[string]int        `json:"errors"`
		LatencyMS     map[string]float64    `json:"latency_ms"`
		ByKind        map[string]kindReport `json:"by_kind"`
		Server        map[string]float64    `json:"server,omitempty"`
	}{
		Requests:      len(all),
		Succeeded:     len(lat),
		DurationS:     elapsed.Seconds(),
		ThroughputRPS: float64(len(all)) / elapsed.Seconds(),
		Errors: map[string]int{
			"transport": errTransport, "http_4xx": err4xx,
			"http_5xx": err5xx, "http_429": err429,
		},
		LatencyMS: map[string]float64{
			"p50": ms(percentile(lat, 50)),
			"p95": ms(percentile(lat, 95)),
			"p99": ms(percentile(lat, 99)),
		},
		ByKind: map[string]kindReport{},
	}
	for kind, ds := range byKind {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		report.ByKind[kind] = kindReport{
			Requests: counts[kind],
			P50MS:    ms(percentile(ds, 50)),
			P95MS:    ms(percentile(ds, 95)),
			P99MS:    ms(percentile(ds, 99)),
		}
	}
	// Scrape the server's own counters while it is still up, so the
	// report pairs its admission/refusal view with the client's.
	report.Server = scrapeServerMetrics(client, base)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}
	if *failOn5xx && (err5xx > 0 || errTransport > 0) {
		log.Fatalf("FAIL: %d transport errors, %d 5xx responses", errTransport, err5xx)
	}
}
