// Command upiserve serves a upidb database over HTTP — the network
// front end of the shard-per-core engine. It creates (or opens) a
// database, attaches the requested tables, optionally preloads
// synthetic data, and serves the internal/server API with
// token-bucket admission and graceful drain on SIGTERM/SIGINT.
//
// Examples:
//
//	# In-memory database, one sharded table, 10k synthetic tuples:
//	upiserve -addr :8080 -table authors:X:Y -shards 4 -preload 10000
//
//	# Durable database on disk; reopen it later with -open:
//	upiserve -dir /var/data/upi -table authors:X:Y
//	upiserve -dir /var/data/upi -table authors:X:Y -open
//
// The -table flag repeats; its value is "name:primary" or
// "name:primary:sec1;sec2". -shards 0 means one shard per core
// (GOMAXPROCS).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"upidb"
	"upidb/internal/server"
)

// tableSpec is one -table flag value, parsed.
type tableSpec struct {
	name      string
	primary   string
	secondary []string
}

func parseTableSpec(v string) (tableSpec, error) {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return tableSpec{}, fmt.Errorf("bad -table %q: want name:primary[:sec1;sec2]", v)
	}
	spec := tableSpec{name: parts[0], primary: parts[1]}
	if len(parts) == 3 && parts[2] != "" {
		spec.secondary = strings.Split(parts[2], ";")
	}
	return spec, nil
}

// preload fills a table with synthetic tuples matching the schema the
// loadgen (cmd/upiload) drives: uncertain primary with two
// alternatives over a small value pool, one-alternative secondaries.
func preload(t *upidb.Table, n int) error {
	primary := t.PrimaryAttr()
	secondary := t.SecondaryAttrs()
	for i := 0; i < n; i++ {
		tup := &upidb.Tuple{ID: uint64(i + 1), Existence: 1}
		main, err := upidb.NewDiscrete([]upidb.Alternative{
			{Value: fmt.Sprintf("v%d", i%16), Prob: 0.7},
			{Value: fmt.Sprintf("v%d", (i+5)%16), Prob: 0.3},
		})
		if err != nil {
			return err
		}
		tup.Unc = append(tup.Unc, upidb.UncField{Name: primary, Dist: main})
		for _, sec := range secondary {
			d, err := upidb.NewDiscrete([]upidb.Alternative{
				{Value: fmt.Sprintf("w%d", i%8), Prob: 1},
			})
			if err != nil {
				return err
			}
			tup.Unc = append(tup.Unc, upidb.UncField{Name: sec, Dist: d})
		}
		if err := t.Insert(tup); err != nil {
			return err
		}
	}
	// Flush + merge so the preload lives in a compact main partition
	// and the statistics rebuild from it.
	if err := t.Flush(); err != nil {
		return err
	}
	return t.Merge()
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dir         = flag.String("dir", "", "database directory (empty = in-memory)")
		open        = flag.Bool("open", false, "open an existing database instead of creating one")
		shards      = flag.Int("shards", 1, "shards per table (0 = one per core)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently served requests (excess gets 429)")
		timeout     = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		preloadN    = flag.Int("preload", 0, "synthetic tuples to preload per table")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator-only; off by default)")
	)
	var specs []tableSpec
	flag.Func("table", "table spec name:primary[:sec1;sec2] (repeatable)", func(v string) error {
		spec, err := parseTableSpec(v)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		log.Fatal("at least one -table is required")
	}
	nShards := *shards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}

	var (
		db  *upidb.DB
		err error
	)
	if *open {
		db, err = upidb.Open(*dir)
	} else {
		db, err = upidb.Create(*dir)
	}
	if err != nil {
		log.Fatalf("database: %v", err)
	}

	for _, spec := range specs {
		var t *upidb.Table
		if *open {
			t, err = db.OpenTable(spec.name, spec.primary, spec.secondary)
		} else {
			t, err = db.CreateTable(spec.name, spec.primary, spec.secondary, upidb.WithShards(nShards))
		}
		if err != nil {
			log.Fatalf("table %s: %v", spec.name, err)
		}
		if *preloadN > 0 && !*open {
			start := time.Now()
			if err := preload(t, *preloadN); err != nil {
				log.Fatalf("preload %s: %v", spec.name, err)
			}
			log.Printf("preloaded %s: %d tuples across %d shards in %v",
				spec.name, *preloadN, t.NumShards(), time.Since(start).Round(time.Millisecond))
		}
	}

	cfg := server.Config{MaxInflight: *maxInflight, DefaultTimeout: *timeout, EnablePprof: *pprofOn}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := server.New(db, cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("upiserve listening on %s (max-inflight %d, shards %d)", *addr, *maxInflight, nShards)

	select {
	case <-ctx.Done():
		// Graceful drain: refuse new work, let the listener finish
		// in-flight connections, wait for handlers, then close the DB so
		// durable tables checkpoint cleanly.
		log.Printf("signal received; draining")
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		srv.Drain()
		if err := db.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		log.Printf("drained; bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			_ = db.Close()
			log.Fatalf("serve: %v", err)
		}
	}
	os.Exit(0)
}
