// Command upidemo walks through the paper's running example (Tables
// 1-5) end to end on a live database: it builds a UPI on the Author
// table, shows the physical layout of the heap file, cutoff index and
// secondary index, answers Query 1 at several thresholds, and explains
// the modeled cost of each query.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"upidb"
)

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "upidemo:", err)
		os.Exit(1)
	}
}

func dist(alts ...upidb.Alternative) upidb.Discrete {
	d, err := upidb.NewDiscrete(alts)
	must(err)
	return d
}

func main() {
	parallel := flag.Int("parallel", 0, "per-query partition fan-out (0 = GOMAXPROCS, 1 = serial; modeled costs are identical)")
	flag.Parse()

	db, err := upidb.Create("")
	must(err)
	authors, err := db.CreateTable("authors", "Institution", []string{"Country"},
		upidb.WithCutoff(0.10), upidb.WithParallelism(*parallel))
	must(err)

	fmt.Println("Loading the paper's running example (Table 4):")
	rows := []*upidb.Tuple{
		{ID: 1, Existence: 0.9,
			Det: []upidb.DetField{{Name: "Name", Value: "Alice"}},
			Unc: []upidb.UncField{
				{Name: "Institution", Dist: dist(
					upidb.Alternative{Value: "Brown", Prob: 0.8},
					upidb.Alternative{Value: "MIT", Prob: 0.2})},
				{Name: "Country", Dist: dist(upidb.Alternative{Value: "US", Prob: 1.0})},
			}},
		{ID: 2, Existence: 1.0,
			Det: []upidb.DetField{{Name: "Name", Value: "Bob"}},
			Unc: []upidb.UncField{
				{Name: "Institution", Dist: dist(
					upidb.Alternative{Value: "MIT", Prob: 0.95},
					upidb.Alternative{Value: "UCB", Prob: 0.05})},
				{Name: "Country", Dist: dist(upidb.Alternative{Value: "US", Prob: 1.0})},
			}},
		{ID: 3, Existence: 0.8,
			Det: []upidb.DetField{{Name: "Name", Value: "Carol"}},
			Unc: []upidb.UncField{
				{Name: "Institution", Dist: dist(
					upidb.Alternative{Value: "Brown", Prob: 0.6},
					upidb.Alternative{Value: "U. Tokyo", Prob: 0.4})},
				{Name: "Country", Dist: dist(
					upidb.Alternative{Value: "US", Prob: 0.6},
					upidb.Alternative{Value: "Japan", Prob: 0.4})},
			}},
	}
	for _, r := range rows {
		name, _ := r.DetValue("Name")
		inst, _ := r.Uncertain("Institution")
		fmt.Printf("  %-6s existence=%.0f%%  institution=%v\n", name, r.Existence*100, inst)
		must(authors.Insert(r))
	}
	must(authors.Flush())

	ctx := context.Background()
	fmt.Println("\nQuery 1: SELECT * FROM Author WHERE Institution=MIT")
	for _, qt := range []float64{0.1, 0.5, 0.96} {
		must(authors.DropCaches())
		res, err := authors.Run(ctx, upidb.PTQ("", "MIT", qt).WithStats())
		must(err)
		fmt.Printf("  QT=%.2f -> %d rows  [%s]\n", qt, res.Len(), res.Info())
		must(res.Err())
		for r, rerr := range res.All() {
			must(rerr)
			name, _ := r.Tuple.DetValue("Name")
			fmt.Printf("    %-6s confidence=%.0f%%\n", name, r.Confidence*100)
		}
	}

	fmt.Println("\nSecondary PTQ with tailored access: Country=US, QT=0.8")
	res, err := authors.Run(ctx, upidb.PTQ("Country", "US", 0.8))
	must(err)
	for r, rerr := range res.All() {
		must(rerr)
		name, _ := r.Tuple.DetValue("Name")
		fmt.Printf("  %-6s confidence=%.0f%%\n", name, r.Confidence*100)
	}

	fmt.Println("\nTop-2 most likely MIT authors:")
	res, err = authors.Run(ctx, upidb.TopKQuery("MIT", 2))
	must(err)
	for i, r := range res.Collect() {
		name, _ := r.Tuple.DetValue("Name")
		fmt.Printf("  #%d %-6s confidence=%.0f%%\n", i+1, name, r.Confidence*100)
	}

	fmt.Println("\nCost-based planning (EXPLAIN):")
	must(authors.BuildStats(rows))
	res, err = authors.Run(ctx, upidb.PTQ("Institution", "MIT", 0.05).WithExplain())
	must(err)
	fmt.Print(res.Info().Explain)
	res, err = authors.Run(ctx, upidb.PTQ("Country", "US", 0.8).WithExplain())
	must(err)
	fmt.Print(res.Info().Explain)

	fmt.Println("\nMaintenance: delete Bob, merge fractures.")
	must(authors.Delete(2))
	must(authors.Flush())
	must(authors.Merge())
	res, err = authors.Run(ctx, upidb.PTQ("", "MIT", 0.1))
	must(err)
	fmt.Printf("  after delete+merge, Query 1 at QT=0.1 returns %d row(s)\n", res.Len())
	must(res.Err())

	st := db.DiskStats()
	fmt.Printf("\nSimulated disk totals: %s\n", st)
	fmt.Printf("Database size: %d bytes across all files\n", db.TotalSizeBytes())
}
