// Command upibench regenerates the tables and figures of the UPI
// paper's evaluation section (see README.md for the experiment index).
//
// Usage:
//
//	upibench [-experiment all|fig3|...|table8] [-scale 1.0] [-seed 1] [-json out.json]
//
// Runtimes are modeled seconds on the paper's simulated disk (10 ms
// seek, 20 ms/MB read, 50 ms/MB write, 100 ms per file open), measured
// cold-cache, so output is deterministic for a given scale and seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"upidb/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment IDs (fig3..fig12, table7, table8, parallel-ptq, planner-routing) or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = 70k authors, 130k publications, 150k observations)")
		seed       = flag.Int64("seed", 1, "dataset generation seed")
		parallel   = flag.Int("parallel", 0, "per-query partition fan-out for fractured-UPI experiments (0 = GOMAXPROCS, 1 = serial; modeled results are identical)")
		jsonOut    = flag.String("json", "", "also write the regenerated experiments as JSON to this file (CI perf trajectory)")
	)
	flag.Parse()

	env := bench.NewEnv(bench.Config{Scale: *scale, Seed: *seed, Parallelism: *parallel})
	ids := make([]string, 0)
	if *experiment == "all" {
		for _, r := range bench.Registered() {
			ids = append(ids, r.ID)
		}
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	fmt.Printf("upibench: scale=%.3g seed=%d experiments=%v\n\n", *scale, *seed, ids)
	report := struct {
		Scale       float64             `json:"scale"`
		Seed        int64               `json:"seed"`
		Experiments []*bench.Experiment `json:"experiments"`
	}{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		exp, err := bench.Run(env, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "upibench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(exp)
		fmt.Printf("   (regenerated in %v wall-clock)\n\n", time.Since(start).Round(time.Millisecond))
		report.Experiments = append(report.Experiments, exp)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "upibench: marshal: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "upibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
