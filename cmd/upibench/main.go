// Command upibench regenerates the tables and figures of the UPI
// paper's evaluation section (see README.md for the experiment index).
//
// Usage:
//
//	upibench [-experiment all|fig3|...|table8] [-scale 1.0] [-seed 1]
//	         [-json out.json] [-compare baseline.json]
//
// Runtimes are modeled seconds on the paper's simulated disk (10 ms
// seek, 20 ms/MB read, 50 ms/MB write, 100 ms per file open), measured
// cold-cache, so output is deterministic for a given scale and seed.
//
// With -compare, the regenerated experiments are checked against a
// previously written -json baseline: any modeled-cost cell that grew
// more than 10% fails the run (exit 1) — the CI bench-regression gate.
// Wall-clock columns are host-dependent and excluded; lower values
// never fail.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"upidb/internal/bench"
)

// report is the JSON document -json writes and -compare reads.
type report struct {
	Scale       float64             `json:"scale"`
	Seed        int64               `json:"seed"`
	Experiments []*bench.Experiment `json:"experiments"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment IDs (fig3..fig12, table7, table8, parallel-ptq, planner-routing, spatial-routing, streaming-latency, wallclock-disk, plan-cache) or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = 70k authors, 130k publications, 150k observations)")
		seed       = flag.Int64("seed", 1, "dataset generation seed")
		parallel   = flag.Int("parallel", 0, "per-query partition fan-out for fractured-UPI experiments (0 = GOMAXPROCS, 1 = serial; modeled results are identical)")
		jsonOut    = flag.String("json", "", "also write the regenerated experiments as JSON to this file (CI perf trajectory)")
		compare    = flag.String("compare", "", "baseline JSON (a previous -json output) to compare against; exit 1 if any modeled cost regressed >10%")
	)
	flag.Parse()

	ctx := context.Background()
	env := bench.NewEnv(bench.Config{Scale: *scale, Seed: *seed, Parallelism: *parallel})
	ids := make([]string, 0)
	if *experiment == "all" {
		for _, r := range bench.Registered() {
			ids = append(ids, r.ID)
		}
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	fmt.Printf("upibench: scale=%.3g seed=%d experiments=%v\n\n", *scale, *seed, ids)
	rep := report{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		exp, err := bench.Run(ctx, env, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "upibench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(exp)
		fmt.Printf("   (regenerated in %v wall-clock)\n\n", time.Since(start).Round(time.Millisecond))
		rep.Experiments = append(rep.Experiments, exp)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "upibench: marshal: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "upibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *compare != "" {
		regressions, err := compareBaseline(rep, *compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "upibench: compare: %v\n", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "upibench: %d modeled-cost regression(s) vs %s:\n", len(regressions), *compare)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("compare: no modeled-cost regression >%.0f%% vs %s\n", regressionTolerance*100, *compare)
	}
}

// regressionTolerance is the relative growth a modeled-cost cell may
// show against the baseline before the compare gate fails.
const regressionTolerance = 0.10

// compareBaseline checks every current experiment cell against the
// baseline report. Cells are matched by experiment ID, row label (or
// x value) and column name; anything the baseline lacks — a new
// experiment, an extra parallelism row on a wider host — is noted and
// skipped, never failed. Wall-clock columns are host-dependent and
// excluded from the gate.
func compareBaseline(cur report, path string) ([]string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.Scale != cur.Scale || base.Seed != cur.Seed {
		return nil, fmt.Errorf("baseline %s was generated at scale=%g seed=%d, this run is scale=%g seed=%d — regenerate the baseline",
			path, base.Scale, base.Seed, cur.Scale, cur.Seed)
	}
	byID := make(map[string]*bench.Experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		byID[e.ID] = e
	}
	var regressions []string
	for _, e := range cur.Experiments {
		b, ok := byID[e.ID]
		if !ok {
			fmt.Printf("compare: %s not in baseline, skipped\n", e.ID)
			continue
		}
		baseRows := make(map[string]bench.Row, len(b.Rows))
		for _, r := range b.Rows {
			baseRows[rowKey(r)] = r
		}
		for _, r := range e.Rows {
			br, ok := baseRows[rowKey(r)]
			if !ok {
				fmt.Printf("compare: %s row %q not in baseline, skipped\n", e.ID, rowKey(r))
				continue
			}
			for ci, col := range e.Columns {
				// Gate only modeled-seconds columns ("... [s]" or
				// "... [s/query]"): counts, percentages and wall-clock
				// columns are not modeled costs.
				if !strings.Contains(col, "[s") || strings.Contains(col, "Wall") {
					continue
				}
				bi := columnIndex(b.Columns, col)
				if bi < 0 || bi >= len(br.Values) || ci >= len(r.Values) {
					continue
				}
				got, want := r.Values[ci], br.Values[bi]
				if got > want*(1+regressionTolerance)+1e-9 {
					regressions = append(regressions, fmt.Sprintf(
						"%s / %s / %s: %.4f vs baseline %.4f (+%.1f%%)",
						e.ID, rowKey(r), col, got, want, 100*(got/want-1)))
				}
			}
		}
	}
	return regressions, nil
}

func rowKey(r bench.Row) string {
	if r.Label != "" {
		return r.Label
	}
	return fmt.Sprintf("x=%g", r.X)
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}
